#include "core/plan_io.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstddef>
#include <cstring>
#include <filesystem>
#include <type_traits>
#include <utility>

#include "core/serialize.hpp"
#include "obs/telemetry.hpp"
#include "support/contract.hpp"
#include "verify/verify.hpp"

namespace ir::core {

namespace {

// ---------------------------------------------------------------------------
// On-disk layout.  A fixed-size header (8-byte multiple, no implicit
// padding — the static_asserts pin it) followed by the section payloads,
// each zero-padded to 8-byte alignment so borrowed tables are naturally
// aligned inside the mapping.
// ---------------------------------------------------------------------------

constexpr char kMagic[8] = {'I', 'R', 'P', 'L', 'A', 'N', '\n', '\0'};

/// Written as the native 32-bit value 0x01020304; a reader on a machine
/// with a different byte order sees 0x04030201 and rejects the file.
constexpr std::uint32_t kEndianTag = 0x01020304u;

enum SectionId : std::size_t {
  kSecSystemText = 0,
  kSecWriteCell,
  kSecRootCell,
  kSecJumpDst,
  kSecJumpSrc,
  kSecJumpRoundBegin,
  kSecBlockedBlocks,
  kSecBlockedLocalPred,
  kSecBlockedFixDst,
  kSecBlockedFixSrc,
  kSecBlockedFixBegin,
  kSecScanHead,
  kSecElementwiseCell,
  kSecElementwiseF,
  kSecElementwiseH,
  kSecGirCell,
  kSecGirTermBegin,
  kSecGirTermCell,
  kSecGirExpBegin,
  kSecGirExpLimbs,
  kSectionCount,
};

constexpr const char* kSectionNames[kSectionCount] = {
    "system-text",        "write-cell",       "root-cell",
    "jump-dst",           "jump-src",         "jump-round-begin",
    "blocked-blocks",     "blocked-local-pred", "blocked-fix-dst",
    "blocked-fix-src",    "blocked-fix-begin",  "scan-head",
    "elementwise-cell",   "elementwise-f",    "elementwise-h",
    "gir-cell",           "gir-term-begin",   "gir-term-cell",
    "gir-exp-begin",      "gir-exp-limbs",
};

/// Element width of each section's payload, for the bounds gate.
constexpr std::uint64_t kSectionElemBytes[kSectionCount] = {
    1,  // system text
    4, 4,                    // write/root cell
    4, 4, 8,                 // jump dst/src/round_begin
    24, 4, 4, 4, 8,          // blocked blocks/local_pred/fix_dst/fix_src/fix_begin
    1,                       // scan head
    4, 4, 4,                 // elementwise cell/f/h
    4, 8, 4, 8, 4,           // gir cell/term_begin/term_cell/exp_begin/exp_limbs
};

struct PlanSection {
  std::uint64_t offset;  ///< absolute file offset, 8-byte aligned
  std::uint64_t bytes;   ///< exact payload length (no padding)
};

/// Fixed scalar-stat slots (engine counters that are not tables).
enum ScalarId : std::size_t {
  kScJumpPeakActive = 0,
  kScJumpSeedOps,
  kScBlockedPhase1Ops,
  kScBlockedResolveRounds,
  kScScanSegments,
  kScScanLongest,
  kScGirCapRounds,
  kScGirCapPeakEdges,
  kScGirLiveEquations,
  kScalarCount = 12,  // three reserved slots
};

struct PlanFileHeader {
  char magic[8];
  std::uint32_t endian_tag;
  std::uint32_t version;
  std::uint32_t engine;
  std::uint32_t flags;  ///< bit 0 = chain
  std::uint64_t word_bytes;  ///< producer's sizeof(size_t)
  std::uint64_t fingerprint;
  std::uint64_t store_key;
  std::uint64_t check_bytes;
  std::uint64_t check_hash2;
  /// The (route, option-word) vector the identity above derives from.  The
  /// loader re-derives store_key/check from the EMBEDDED system plus these
  /// words and rejects the file on any disagreement, so the recorded
  /// identity can never name a different system than the payload carries.
  std::uint64_t key_route;
  std::uint64_t key_word_count;
  std::uint64_t key_words[kMaxPlanKeyWords];
  std::uint64_t cells;
  std::uint64_t iterations;
  std::uint64_t scalars[kScalarCount];
  PlanSection sections[kSectionCount];
  std::uint64_t checksum;  ///< FNV-1a 64 of the file with this field zeroed
};

static_assert(sizeof(PlanSection) == 16);
static_assert(kMaxPlanKeyWords == 3, "header layout pins three key-word slots");
static_assert(sizeof(PlanFileHeader) ==
                  8 + 4 * 4 + 12 * 8 + kScalarCount * 8 + kSectionCount * 16 + 8,
              "header must have no implicit padding");
static_assert(sizeof(PlanFileHeader) % 8 == 0);
static_assert(std::is_trivially_copyable_v<PlanFileHeader>);
static_assert(sizeof(parallel::Block) == 24 && alignof(parallel::Block) == 8,
              "blocked-blocks section layout assumes three size_t fields");

constexpr std::size_t kChecksumOffset = offsetof(PlanFileHeader, checksum);

[[noreturn]] void reject(const std::string& why) {
  throw support::ContractViolation("plan file rejected: " + why);
}

/// Thrown (file-locally) when a plan file does not exist at all, so
/// PlanStore::get can classify ENOENT as a miss rather than a reject
/// without a racy exists() pre-check.
class PlanFileMissing : public support::ContractViolation {
 public:
  using support::ContractViolation::ContractViolation;
};

std::uint64_t fnv1a(const unsigned char* data, std::size_t size, std::uint64_t hash) {
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= 1099511628211ull;
  }
  return hash;
}

/// Whole-file checksum with the checksum field treated as zero.
std::uint64_t file_checksum(const unsigned char* data, std::size_t size) {
  constexpr unsigned char kZero[8] = {0};
  std::uint64_t hash = 1469598103934665603ull;
  hash = fnv1a(data, kChecksumOffset, hash);
  hash = fnv1a(kZero, sizeof kZero, hash);
  hash = fnv1a(data + kChecksumOffset + 8, size - kChecksumOffset - 8, hash);
  return hash;
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

void append_section(std::string& out, PlanFileHeader& header, SectionId id,
                    const void* data, std::uint64_t bytes) {
  if (bytes == 0) {
    header.sections[id] = {0, 0};
    return;
  }
  while (out.size() % 8 != 0) out.push_back('\0');
  header.sections[id] = {out.size(), bytes};
  out.append(static_cast<const char*>(data), bytes);
}

template <typename T>
void append_table(std::string& out, PlanFileHeader& header, SectionId id,
                  const PlanTable<T>& table) {
  append_section(out, header, id, table.data(), table.size() * sizeof(T));
}

}  // namespace

std::string serialize_plan(const Plan& plan, const GeneralIrSystem& sys,
                           const PlanKeyWords& key_words) {
  const ContentHash hashes = content_hash(sys);
  IR_REQUIRE(plan.fingerprint == hashes.fingerprint,
             "plan was not compiled from this system (fingerprint mismatch)");
  IR_REQUIRE(key_words.count <= kMaxPlanKeyWords,
             "plan key words exceed the format's fixed slots");
  // Derive the recorded identity from (system, key words) right here: a
  // written file's store key and check are consistent with its embedded
  // system by construction, mirroring the loader's re-derivation gate.
  const std::uint64_t store_key = plan_cache_key_for(hashes.fingerprint, key_words);
  const PlanKeyCheck check = plan_key_check_for(hashes.identity, key_words);

  PlanFileHeader header{};
  std::memcpy(header.magic, kMagic, sizeof kMagic);
  header.endian_tag = kEndianTag;
  header.version = kPlanFormatVersion;
  header.engine = static_cast<std::uint32_t>(plan.engine);
  header.flags = plan.chain ? 1u : 0u;
  header.word_bytes = sizeof(std::size_t);
  header.fingerprint = plan.fingerprint;
  header.store_key = store_key;
  header.check_bytes = check.bytes;
  header.check_hash2 = check.hash2;
  header.key_route = key_words.route;
  header.key_word_count = key_words.count;
  for (std::size_t w = 0; w < key_words.count; ++w) {
    header.key_words[w] = key_words.words[w];  // unused slots stay zero
  }
  header.cells = plan.cells;
  header.iterations = plan.iterations;
  header.scalars[kScJumpPeakActive] = plan.jump.peak_active;
  header.scalars[kScJumpSeedOps] = plan.jump.seed_ops;
  header.scalars[kScBlockedPhase1Ops] = plan.blocked.phase1_ops;
  header.scalars[kScBlockedResolveRounds] = plan.blocked.resolve_rounds;
  header.scalars[kScScanSegments] = plan.scan.segments;
  header.scalars[kScScanLongest] = plan.scan.longest;
  header.scalars[kScGirCapRounds] = plan.gir.cap_rounds;
  header.scalars[kScGirCapPeakEdges] = plan.gir.cap_peak_edges;
  header.scalars[kScGirLiveEquations] = plan.gir.live_equations;

  std::string out(sizeof(PlanFileHeader), '\0');
  const std::string system_text = to_text(sys);
  append_section(out, header, kSecSystemText, system_text.data(), system_text.size());
  append_table(out, header, kSecWriteCell, plan.write_cell);
  append_table(out, header, kSecRootCell, plan.root_cell);
  append_table(out, header, kSecJumpDst, plan.jump.dst);
  append_table(out, header, kSecJumpSrc, plan.jump.src);
  append_table(out, header, kSecJumpRoundBegin, plan.jump.round_begin);
  append_table(out, header, kSecBlockedBlocks, plan.blocked.blocks);
  append_table(out, header, kSecBlockedLocalPred, plan.blocked.local_pred);
  append_table(out, header, kSecBlockedFixDst, plan.blocked.fix_dst);
  append_table(out, header, kSecBlockedFixSrc, plan.blocked.fix_src);
  append_table(out, header, kSecBlockedFixBegin, plan.blocked.fix_begin);
  append_table(out, header, kSecScanHead, plan.scan.head);
  append_table(out, header, kSecElementwiseCell, plan.elementwise.cell);
  append_table(out, header, kSecElementwiseF, plan.elementwise.f);
  append_table(out, header, kSecElementwiseH, plan.elementwise.h);
  append_table(out, header, kSecGirCell, plan.gir.cell);
  append_table(out, header, kSecGirTermBegin, plan.gir.term_begin);
  append_table(out, header, kSecGirTermCell, plan.gir.term_cell);

  // The GIR exponents are the one variable-width table: a limb pool plus a
  // per-term [begin, end) offset table into it, exactly the CSR shape the
  // fixed-width tables use for rounds and fix-ups.
  if (!plan.gir.term_exp.empty()) {
    std::vector<std::uint64_t> exp_begin;
    std::vector<std::uint32_t> limbs;
    exp_begin.reserve(plan.gir.term_exp.size() + 1);
    exp_begin.push_back(0);
    for (const auto& exp : plan.gir.term_exp) {
      limbs.insert(limbs.end(), exp.limbs().begin(), exp.limbs().end());
      exp_begin.push_back(limbs.size());
    }
    append_section(out, header, kSecGirExpBegin, exp_begin.data(),
                   exp_begin.size() * sizeof(std::uint64_t));
    append_section(out, header, kSecGirExpLimbs, limbs.data(),
                   limbs.size() * sizeof(std::uint32_t));
  }

  std::memcpy(out.data(), &header, sizeof header);
  const std::uint64_t checksum =
      file_checksum(reinterpret_cast<const unsigned char*>(out.data()), out.size());
  std::memcpy(out.data() + kChecksumOffset, &checksum, sizeof checksum);
  return out;
}

namespace {

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// Header + bounds + checksum gate.  Everything here runs before any table
/// pointer is formed, so a hostile file cannot steer a single read outside
/// [data, data+size).
PlanFileHeader validate_structure(const unsigned char* data, std::size_t size) {
  if (size < sizeof(PlanFileHeader)) {
    reject("truncated: " + std::to_string(size) + " bytes, header needs " +
           std::to_string(sizeof(PlanFileHeader)));
  }
  PlanFileHeader header;
  std::memcpy(&header, data, sizeof header);
  if (std::memcmp(header.magic, kMagic, sizeof kMagic) != 0) {
    reject("bad magic (not an " + std::string(kPlanFileExtension) + " plan file)");
  }
  if (header.endian_tag != kEndianTag) {
    reject("foreign byte order (endianness tag mismatch); re-export on this platform");
  }
  if (header.version != kPlanFormatVersion) {
    reject("format version " + std::to_string(header.version) + ", reader supports " +
           std::to_string(kPlanFormatVersion));
  }
  if (header.word_bytes != sizeof(std::size_t)) {
    reject("word size " + std::to_string(header.word_bytes) + " bytes, platform has " +
           std::to_string(sizeof(std::size_t)));
  }
  if (header.engine > static_cast<std::uint32_t>(PlanEngine::kScan)) {
    reject("unknown engine id " + std::to_string(header.engine));
  }
  const std::uint64_t checksum = file_checksum(data, size);
  if (checksum != header.checksum) {
    reject("checksum mismatch (file corrupt or tampered)");
  }
  for (std::size_t s = 0; s < kSectionCount; ++s) {
    const PlanSection& sec = header.sections[s];
    if (sec.bytes == 0) continue;
    if (sec.offset % 8 != 0 || sec.offset < sizeof(PlanFileHeader) ||
        sec.offset > size || sec.bytes > size - sec.offset) {
      reject(std::string("section ") + kSectionNames[s] + " out of bounds (offset " +
             std::to_string(sec.offset) + ", " + std::to_string(sec.bytes) +
             " bytes in a " + std::to_string(size) + "-byte file)");
    }
    if (sec.bytes % kSectionElemBytes[s] != 0) {
      reject(std::string("section ") + kSectionNames[s] + " length " +
             std::to_string(sec.bytes) + " is not a multiple of its " +
             std::to_string(kSectionElemBytes[s]) + "-byte elements");
    }
  }
  return header;
}

template <typename T>
void borrow_table(PlanTable<T>& table, const unsigned char* data,
                  const PlanSection& sec) {
  if (sec.bytes == 0) {
    table.clear();
    return;
  }
  table.borrow(reinterpret_cast<const T*>(data + sec.offset), sec.bytes / sizeof(T));
}

}  // namespace

namespace {

/// Shared loader core: structural gate, embedded-system round trip, table
/// borrowing, then the static verifier.
LoadedPlan load_plan_bytes(const unsigned char* data, std::size_t size,
                           std::shared_ptr<const void> backing,
                           const PlanLoadOptions& options) {
  const PlanFileHeader header = validate_structure(data, size);

  // Parse the embedded system and tie the knot: the header fingerprint must
  // be the fingerprint of exactly those bytes, or the plan and "its" system
  // have drifted apart and nothing downstream can be trusted.
  const PlanSection& sys_sec = header.sections[kSecSystemText];
  LoadedPlan loaded;
  try {
    loaded.system = system_from_text(std::string_view(
        reinterpret_cast<const char*>(data + sys_sec.offset), sys_sec.bytes));
  } catch (const support::ContractViolation& e) {
    reject(std::string("embedded system unparseable: ") + e.what());
  }
  const ContentHash hashes = content_hash(loaded.system);  // one pass, both hashes
  if (hashes.fingerprint != header.fingerprint) {
    reject("fingerprint mismatch between header and embedded system");
  }
  if (loaded.system.cells != header.cells ||
      loaded.system.iterations() != header.iterations) {
    reject("header cells/iterations disagree with the embedded system");
  }

  // Re-derive the cache identity from the EMBEDDED system plus the recorded
  // key words, and demand the header recorded exactly that.  This ties
  // store_key/check to the payload itself: a spliced file — one system's
  // verified plan wearing another system's key and check, checksum resealed
  // — fails here and is never served for the wrong system.
  if (header.key_word_count > kMaxPlanKeyWords) {
    reject("key-word count " + std::to_string(header.key_word_count) +
           " exceeds the format's " + std::to_string(kMaxPlanKeyWords) + " slots");
  }
  PlanKeyWords key_words;
  key_words.route = header.key_route;
  key_words.count = header.key_word_count;
  for (std::size_t w = 0; w < key_words.count; ++w) {
    key_words.words[w] = header.key_words[w];
  }
  if (plan_cache_key_for(hashes.fingerprint, key_words) != header.store_key) {
    reject("store key does not derive from the embedded system (spliced or "
           "tampered identity)");
  }
  const PlanKeyCheck derived_check = plan_key_check_for(hashes.identity, key_words);
  if (!(derived_check == PlanKeyCheck{header.check_bytes, header.check_hash2})) {
    reject("key check does not derive from the embedded system (spliced or "
           "tampered identity)");
  }

  auto plan = std::make_shared<Plan>();
  plan->engine = static_cast<PlanEngine>(header.engine);
  plan->chain = (header.flags & 1u) != 0;
  plan->fingerprint = header.fingerprint;
  plan->cells = header.cells;
  plan->iterations = header.iterations;
  // The report is not serialized: analyze() is cheap relative to schedule
  // construction, and recomputing it from the embedded system keeps the
  // verifier's routing-consistency lint honest against file tampering.
  plan->report = analyze(loaded.system);
  plan->jump.peak_active = header.scalars[kScJumpPeakActive];
  plan->jump.seed_ops = header.scalars[kScJumpSeedOps];
  plan->blocked.phase1_ops = header.scalars[kScBlockedPhase1Ops];
  plan->blocked.resolve_rounds = header.scalars[kScBlockedResolveRounds];
  plan->scan.segments = header.scalars[kScScanSegments];
  plan->scan.longest = header.scalars[kScScanLongest];
  plan->gir.cap_rounds = header.scalars[kScGirCapRounds];
  plan->gir.cap_peak_edges = header.scalars[kScGirCapPeakEdges];
  plan->gir.live_equations = header.scalars[kScGirLiveEquations];

  borrow_table(plan->write_cell, data, header.sections[kSecWriteCell]);
  borrow_table(plan->root_cell, data, header.sections[kSecRootCell]);
  borrow_table(plan->jump.dst, data, header.sections[kSecJumpDst]);
  borrow_table(plan->jump.src, data, header.sections[kSecJumpSrc]);
  if (header.sections[kSecJumpRoundBegin].bytes != 0) {
    borrow_table(plan->jump.round_begin, data, header.sections[kSecJumpRoundBegin]);
  }
  borrow_table(plan->blocked.blocks, data, header.sections[kSecBlockedBlocks]);
  borrow_table(plan->blocked.local_pred, data, header.sections[kSecBlockedLocalPred]);
  borrow_table(plan->blocked.fix_dst, data, header.sections[kSecBlockedFixDst]);
  borrow_table(plan->blocked.fix_src, data, header.sections[kSecBlockedFixSrc]);
  borrow_table(plan->blocked.fix_begin, data, header.sections[kSecBlockedFixBegin]);
  borrow_table(plan->scan.head, data, header.sections[kSecScanHead]);
  borrow_table(plan->elementwise.cell, data, header.sections[kSecElementwiseCell]);
  borrow_table(plan->elementwise.f, data, header.sections[kSecElementwiseF]);
  borrow_table(plan->elementwise.h, data, header.sections[kSecElementwiseH]);
  borrow_table(plan->gir.cell, data, header.sections[kSecGirCell]);
  if (header.sections[kSecGirTermBegin].bytes != 0) {
    borrow_table(plan->gir.term_begin, data, header.sections[kSecGirTermBegin]);
  }
  borrow_table(plan->gir.term_cell, data, header.sections[kSecGirTermCell]);

  // Materialize the GIR exponents from the limb pool (the one non-borrowed
  // table).  The CSR offsets are untrusted: monotone + in-bounds or reject.
  const PlanSection& exp_begin_sec = header.sections[kSecGirExpBegin];
  const PlanSection& limb_sec = header.sections[kSecGirExpLimbs];
  if (exp_begin_sec.bytes != 0) {
    const auto* exp_begin =
        reinterpret_cast<const std::uint64_t*>(data + exp_begin_sec.offset);
    const std::size_t begin_count = exp_begin_sec.bytes / sizeof(std::uint64_t);
    const auto* limbs = reinterpret_cast<const std::uint32_t*>(data + limb_sec.offset);
    const std::uint64_t limb_count = limb_sec.bytes / sizeof(std::uint32_t);
    if (begin_count != plan->gir.term_cell.size() + 1) {
      reject("gir-exp-begin table must hold one offset per term plus one");
    }
    if (exp_begin[0] != 0 || exp_begin[begin_count - 1] != limb_count) {
      reject("gir-exp-begin offsets do not span the limb pool");
    }
    plan->gir.term_exp.reserve(begin_count - 1);
    for (std::size_t t = 0; t + 1 < begin_count; ++t) {
      if (exp_begin[t] > exp_begin[t + 1] || exp_begin[t + 1] > limb_count) {
        reject("gir-exp-begin offsets not monotone at term " + std::to_string(t));
      }
      try {
        plan->gir.term_exp.push_back(support::BigUint::from_limbs(
            limbs + exp_begin[t],
            static_cast<std::size_t>(exp_begin[t + 1] - exp_begin[t])));
      } catch (const support::ContractViolation& e) {
        reject("gir exponent " + std::to_string(t) + " non-canonical: " + e.what());
      }
    }
  } else if (header.sections[kSecGirTermCell].bytes != 0) {
    reject("gir terms present but the exponent sections are missing");
  }

  plan->backing = std::move(backing);

  if (options.verify) {
    // Lint + hazard families over the borrowed tables, against the embedded
    // system — the gate that catches in-bounds tampering (a flipped index
    // that still lands inside the value array) the structural checks above
    // cannot see.  Symbolic replay is skipped: it exists to catch schedule-
    // builder bugs, not file corruption, and would dominate load time.
    verify::VerifyOptions vopts;
    vopts.check_symbolic = false;
    const verify::VerifyReport report = verify::verify_plan(*plan, loaded.system, vopts);
    if (!report.ok()) {
      reject("static verification failed: " + report.summary());
    }
  }

  loaded.plan = std::move(plan);
  loaded.store_key = header.store_key;
  loaded.check = PlanKeyCheck{header.check_bytes, header.check_hash2};
  loaded.key_words = key_words;
  return loaded;
}

}  // namespace

LoadedPlan load_plan(std::shared_ptr<const std::string> bytes,
                     const PlanLoadOptions& options) {
  IR_REQUIRE(bytes != nullptr, "load_plan needs a buffer");
  const auto* data = reinterpret_cast<const unsigned char*>(bytes->data());
  const std::size_t size = bytes->size();
  return load_plan_bytes(data, size, std::shared_ptr<const void>(bytes, bytes.get()),
                         options);
}

namespace {

/// Read-only mmap of a whole file; unmaps on destruction.  Parked in
/// Plan::backing so the mapping outlives every borrowed table.
class FileMapping {
 public:
  explicit FileMapping(const std::string& path) {
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      if (errno == ENOENT) {
        throw PlanFileMissing("plan file missing: " + path);
      }
      reject("cannot open " + path + ": " + std::strerror(errno));
    }
    struct stat st{};
    if (::fstat(fd, &st) != 0 || st.st_size < 0) {
      ::close(fd);
      reject("cannot stat " + path + ": " + std::strerror(errno));
    }
    size_ = static_cast<std::size_t>(st.st_size);
    if (size_ != 0) {
      void* mapped = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
      if (mapped == MAP_FAILED) {
        ::close(fd);
        reject("cannot mmap " + path + ": " + std::strerror(errno));
      }
      data_ = static_cast<const unsigned char*>(mapped);
    }
    ::close(fd);  // the mapping holds its own reference
  }
  ~FileMapping() {
    if (data_ != nullptr) ::munmap(const_cast<unsigned char*>(data_), size_);
  }
  FileMapping(const FileMapping&) = delete;
  FileMapping& operator=(const FileMapping&) = delete;

  [[nodiscard]] const unsigned char* data() const noexcept { return data_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

 private:
  const unsigned char* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace

LoadedPlan load_plan_file(const std::string& path, const PlanLoadOptions& options) {
  auto mapping = std::make_shared<const FileMapping>(path);
  const unsigned char* data = mapping->data();
  const std::size_t size = mapping->size();
  if (data == nullptr) reject(path + " is empty");
  return load_plan_bytes(data, size, std::move(mapping), options);
}

PlanFileInfo plan_file_info(const std::string& path) {
  const FileMapping mapping(path);
  if (mapping.data() == nullptr) reject(path + " is empty");
  const PlanFileHeader header = validate_structure(mapping.data(), mapping.size());
  PlanFileInfo info;
  info.version = header.version;
  info.engine = static_cast<PlanEngine>(header.engine);
  info.chain = (header.flags & 1u) != 0;
  info.fingerprint = header.fingerprint;
  info.store_key = header.store_key;
  info.check = PlanKeyCheck{header.check_bytes, header.check_hash2};
  info.cells = header.cells;
  info.iterations = header.iterations;
  info.file_bytes = mapping.size();
  info.checksum = header.checksum;
  for (std::size_t s = 0; s < kSectionCount; ++s) {
    if (header.sections[s].bytes == 0) continue;
    info.sections.push_back(
        {kSectionNames[s], header.sections[s].offset, header.sections[s].bytes});
  }
  return info;
}

// ---------------------------------------------------------------------------
// PlanStore
// ---------------------------------------------------------------------------

namespace {

std::string key_hex(std::uint64_t key) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (std::size_t i = 0; i < 16; ++i) {
    out[15 - i] = digits[(key >> (4 * i)) & 0xF];
  }
  return out;
}

}  // namespace

PlanStore::PlanStore(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  IR_REQUIRE(!ec, "cannot create plan store directory " + dir_ + ": " + ec.message());
}

std::string PlanStore::entry_path(std::uint64_t key) const {
  return dir_ + "/plan-" + key_hex(key) + kPlanFileExtension;
}

std::string PlanStore::put(const PlanKeyWords& key_words, const Plan& plan,
                           const GeneralIrSystem& sys) {
  const std::string bytes = serialize_plan(plan, sys, key_words);
  // serialize_plan pinned plan.fingerprint == content_fingerprint(sys), so
  // this is the same key the file's header records.
  const std::uint64_t key = plan_cache_key_for(plan.fingerprint, key_words);
  const std::string final_path = entry_path(key);
  // Atomic publish: write the whole file under a per-writer-unique temp name
  // in the same directory, fsync, then rename onto the final name.  A reader
  // (or a concurrent writer racing on the same key) only ever observes a
  // complete file; rename is the commit point.  The temp name mixes the pid
  // with a process-wide counter so two threads putting the same key never
  // share (and never cross-unlink) a temp file.
  static std::atomic<std::uint64_t> tmp_serial{0};
  const std::string tmp_path =
      final_path + ".tmp." + std::to_string(static_cast<unsigned long>(::getpid())) +
      "." + std::to_string(tmp_serial.fetch_add(1, std::memory_order_relaxed));
  const int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  IR_REQUIRE(fd >= 0, "cannot create " + tmp_path + ": " + std::strerror(errno));
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      const std::string why = std::strerror(errno);
      ::close(fd);
      ::unlink(tmp_path.c_str());
      throw support::ContractViolation("cannot write " + tmp_path + ": " + why);
    }
    written += static_cast<std::size_t>(n);
  }
  const bool flushed = ::fsync(fd) == 0;
  if (::close(fd) != 0 || !flushed) {
    ::unlink(tmp_path.c_str());
    throw support::ContractViolation("cannot flush " + tmp_path + ": " +
                                     std::strerror(errno));
  }
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    const std::string why = std::strerror(errno);
    ::unlink(tmp_path.c_str());
    throw support::ContractViolation("cannot publish " + final_path + ": " + why);
  }
  {
    support::LockGuard lock(mutex_);
    ++puts_;
  }
  IR_COUNTER_ADD("plan_store.puts", 1);
  return final_path;
}

void PlanStore::note_reject() const {
  support::LockGuard lock(mutex_);
  ++rejects_;
  IR_COUNTER_ADD("plan_store.rejects", 1);
}

std::shared_ptr<const Plan> PlanStore::get(std::uint64_t key, const PlanKeyCheck& check) {
  const std::string path = entry_path(key);
  // No exists() pre-check: the open itself classifies.  An entry deleted
  // between a pre-check and the open would otherwise be miscounted as a
  // reject (a corruption signal) instead of the miss it is.
  try {
    LoadedPlan loaded = load_plan_file(path);
    // The same collision discipline as the in-memory cache: the entry must
    // have been exported for exactly this (system, options) identity.
    if (loaded.store_key != key || !(loaded.check == check)) {
      note_reject();
      IR_COUNTER_ADD("plan_cache.collisions", 1);
      return nullptr;
    }
    {
      support::LockGuard lock(mutex_);
      ++hits_;
    }
    IR_COUNTER_ADD("plan_store.hits", 1);
    return loaded.plan;
  } catch (const PlanFileMissing&) {
    support::LockGuard lock(mutex_);
    ++misses_;
    IR_COUNTER_ADD("plan_store.misses", 1);
    return nullptr;
  } catch (const std::exception&) {
    note_reject();
    return nullptr;
  }
}

std::vector<PlanStore::ManifestEntry> PlanStore::manifest() const {
  std::vector<ManifestEntry> out;
  std::error_code ec;
  std::filesystem::directory_iterator it(dir_, ec);
  if (ec) return out;
  for (const auto& entry : it) {
    if (!entry.is_regular_file() || entry.path().extension() != kPlanFileExtension) {
      continue;
    }
    try {
      const PlanFileInfo info = plan_file_info(entry.path().string());
      out.push_back({entry.path().string(), info.store_key, info.fingerprint,
                     info.engine, info.cells, info.iterations, info.file_bytes});
    } catch (const PlanFileMissing&) {
      // Deleted between the directory scan and the open: not a corruption.
    } catch (const std::exception&) {
      note_reject();
    }
  }
  return out;
}

std::size_t PlanStore::preload(PlanCache& cache) {
  std::size_t count = 0;
  for (const ManifestEntry& entry : manifest()) {
    try {
      LoadedPlan loaded = load_plan_file(entry.path);
      cache.insert(loaded.store_key, loaded.check, loaded.plan);
      ++count;
    } catch (const PlanFileMissing&) {
      // Deleted since the manifest scan: not a corruption.
    } catch (const std::exception&) {
      note_reject();
    }
  }
  {
    support::LockGuard lock(mutex_);
    preloaded_ += count;
  }
  IR_COUNTER_ADD("plan_store.preloaded", count);
  return count;
}

std::uint64_t PlanStore::hits() const {
  support::LockGuard lock(mutex_);
  return hits_;
}

std::uint64_t PlanStore::misses() const {
  support::LockGuard lock(mutex_);
  return misses_;
}

std::uint64_t PlanStore::rejects() const {
  support::LockGuard lock(mutex_);
  return rejects_;
}

std::uint64_t PlanStore::puts() const {
  support::LockGuard lock(mutex_);
  return puts_;
}

std::uint64_t PlanStore::preloaded() const {
  support::LockGuard lock(mutex_);
  return preloaded_;
}

}  // namespace ir::core
