#include "graph/dot.hpp"

#include <gtest/gtest.h>

namespace ir::graph {
namespace {

LabeledDag fibonacci_graph(std::size_t n) {
  LabeledDag g(n);
  for (std::size_t i = 2; i < n; ++i) {
    g.add_edge(i, i - 1);
    g.add_edge(i, i - 2);
  }
  return g;
}

TEST(DotTest, GraphStructureRendered) {
  const auto g = fibonacci_graph(4);
  const auto dot = to_dot(g, {"A0", "A1", "i0", "i1"});
  EXPECT_NE(dot.find("digraph \"dependences\""), std::string::npos);
  EXPECT_NE(dot.find("\"i0\" -> \"A1\""), std::string::npos);
  EXPECT_NE(dot.find("\"i1\" -> \"i0\""), std::string::npos);
  // Leaves get the box style and a shared rank.
  EXPECT_NE(dot.find("\"A0\" [shape=box"), std::string::npos);
  EXPECT_NE(dot.find("rank=same; \"A0\"; \"A1\";"), std::string::npos);
  // Unit labels are omitted.
  EXPECT_EQ(dot.find("label=\"1\""), std::string::npos);
}

TEST(DotTest, MultiplicityLabelsShown) {
  LabeledDag g(2);
  g.add_edge(0, 1, PathCount{5});
  const auto dot = to_dot(g);
  EXPECT_NE(dot.find("\"v0\" -> \"v1\" [label=\"5\"]"), std::string::npos);
}

TEST(DotTest, NamesAreEscaped) {
  LabeledDag g(1);
  const auto dot = to_dot(g, {"say \"hi\""});
  EXPECT_NE(dot.find("\\\"hi\\\""), std::string::npos);
}

TEST(DotTest, CapResultRendersClosureCounts) {
  const auto g = fibonacci_graph(6);
  const auto cap = cap_closure(g);
  const auto dot = to_dot(cap, g.node_count());
  // Node 5's exponents: 3 paths to leaf 0, 5 to leaf 1 (Fibonacci).
  EXPECT_NE(dot.find("\"v5\" -> \"v0\" [label=\"3\"]"), std::string::npos);
  EXPECT_NE(dot.find("\"v5\" -> \"v1\" [label=\"5\"]"), std::string::npos);
  // Leaves show as boxes, with no self-edges drawn.
  EXPECT_NE(dot.find("\"v0\" [shape=box"), std::string::npos);
  EXPECT_EQ(dot.find("\"v0\" -> \"v0\""), std::string::npos);
}

TEST(DotTest, CapSizeMismatchRejected) {
  const auto g = fibonacci_graph(4);
  const auto cap = cap_closure(g);
  EXPECT_THROW((void)to_dot(cap, 99), support::ContractViolation);
}

}  // namespace
}  // namespace ir::graph
