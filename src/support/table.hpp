// Minimal fixed-width table renderer for the benchmark report harnesses.
//
// The benches print the same rows/series the paper reports; a small table
// type keeps that output aligned and greppable without dragging in a
// formatting library.
#pragma once

#include <string>
#include <vector>

namespace ir::support {

/// Column-aligned text table.  Add a header once, then rows; render() pads
/// every column to its widest cell.
class TextTable {
 public:
  /// Set the header row (resets nothing else).
  void set_header(std::vector<std::string> header);

  /// Append a data row; ragged rows are allowed and padded with empty cells.
  void add_row(std::vector<std::string> row);

  /// Render with two-space column separation and a dashed rule under the header.
  [[nodiscard]] std::string render() const;

  /// Number of data rows.
  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with `digits` significant digits (%g style).
std::string fmt_g(double v, int digits = 4);

/// Format a double as fixed with `digits` decimals.
std::string fmt_f(double v, int digits = 2);

}  // namespace ir::support
