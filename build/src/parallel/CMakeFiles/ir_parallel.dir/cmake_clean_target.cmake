file(REMOVE_RECURSE
  "libir_parallel.a"
)
