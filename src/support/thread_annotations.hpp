// Clang thread-safety (capability) annotations, plus annotated wrappers for
// std::mutex / lock guards / condition variables.
//
// libstdc++'s std::mutex carries no capability attributes, so annotating the
// *users* of a bare std::mutex proves nothing.  The types below are the
// thinnest possible shims that make -Wthread-safety real: `Mutex` is the
// capability, `LockGuard`/`UniqueLock` are scoped capabilities following the
// MutexLocker pattern from the clang docs (the constructor is annotated
// IR_ACQUIRE and its *body* takes the lock — the analysis treats the scoped
// object itself as the capability holder, so this is not a double acquire),
// and `CondVar` bridges to std::condition_variable via adopt/release so a
// wait neither gains nor loses the caller's capability set, matching the
// atomic release-and-reacquire semantics of a CV wait.
//
// Everything degrades to plain std types under GCC/MSVC: the macros expand to
// nothing and the wrappers are zero-cost forwarding shells, so non-clang
// builds (including this repo's default toolchain) are bit-for-bit the old
// behaviour.  The IR_THREAD_SAFETY CMake option turns the analysis on and
// promotes its findings to errors; see docs/static_analysis.md.
//
// Usage notes, enforced by convention across the repo:
//  * Every guarded member is annotated IR_GUARDED_BY(mutex_).
//  * Private helpers called with the lock held are annotated
//    IR_REQUIRES(mutex_) instead of re-locking.
//  * CV predicate waits must be written as explicit `while (!pred) cv.wait()`
//    loops — a predicate lambda is analyzed without the caller's capability
//    set, so `cv.wait(lock, [&]{ return guarded_; })` is a false positive
//    factory the explicit loop avoids.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define IR_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define IR_THREAD_ANNOTATION(x)
#endif

#define IR_CAPABILITY(name) IR_THREAD_ANNOTATION(capability(name))
#define IR_SCOPED_CAPABILITY IR_THREAD_ANNOTATION(scoped_lockable)
#define IR_GUARDED_BY(...) IR_THREAD_ANNOTATION(guarded_by(__VA_ARGS__))
#define IR_PT_GUARDED_BY(...) IR_THREAD_ANNOTATION(pt_guarded_by(__VA_ARGS__))
#define IR_REQUIRES(...) IR_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define IR_ACQUIRE(...) IR_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define IR_RELEASE(...) IR_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define IR_TRY_ACQUIRE(...) IR_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define IR_EXCLUDES(...) IR_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define IR_RETURN_CAPABILITY(x) IR_THREAD_ANNOTATION(lock_returned(x))
#define IR_NO_THREAD_SAFETY_ANALYSIS IR_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace ir::support {

class CondVar;

/// std::mutex wearing the `capability` attribute.  The underlying native
/// handle is reachable only by CondVar (friend) so no code path can bypass
/// the annotated acquire/release surface.
class IR_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() IR_ACQUIRE() { mutex_.lock(); }
  void unlock() IR_RELEASE() { mutex_.unlock(); }
  bool try_lock() IR_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex& native() { return mutex_; }

  std::mutex mutex_;
};

/// std::lock_guard equivalent: acquires in the constructor, releases in the
/// destructor, no manual lock/unlock surface.
class IR_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mutex) IR_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~LockGuard() IR_RELEASE() { mutex_.unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mutex_;
};

/// std::unique_lock equivalent with the manual lock()/unlock() cycle some
/// loops need (e.g. a dispatcher dropping the lock around batch execution).
/// Tracks ownership so the destructor only releases what is still held; the
/// analysis tracks the same state statically through the scoped-capability
/// annotations.
class IR_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mutex) IR_ACQUIRE(mutex)
      : mutex_(mutex), owned_(true) {
    mutex_.lock();
  }
  ~UniqueLock() IR_RELEASE() {
    if (owned_) mutex_.unlock();
  }

  void lock() IR_ACQUIRE() {
    mutex_.lock();
    owned_ = true;
  }
  void unlock() IR_RELEASE() {
    mutex_.unlock();
    owned_ = false;
  }
  bool owns_lock() const noexcept { return owned_; }
  Mutex& mutex() noexcept { return mutex_; }

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

 private:
  Mutex& mutex_;
  bool owned_;
};

/// Condition variable over an annotated Mutex.  wait()/wait_for() carry no
/// acquire/release annotations on purpose: a CV wait atomically releases and
/// re-acquires, so from the caller's point of view the capability is held
/// before and after — exactly what "no annotation" means to the analysis.
/// The bodies adopt the native mutex into a std::unique_lock for the wait
/// and release() it afterwards so ownership bookkeeping never double-frees.
class CondVar {
 public:
  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  /// Pre: `lock` holds its mutex.  Spurious wakeups happen; always call
  /// inside an explicit `while (!condition)` loop (see header comment).
  void wait(UniqueLock& lock) IR_NO_THREAD_SAFETY_ANALYSIS {
    auto native = adopt(lock);
    cv_.wait(native);
    native.release();
  }

  /// Timed variant; returns std::cv_status-like truth: true if the wait
  /// ended by notification, false on timeout.  Same looping contract.
  template <typename Rep, typename Period>
  bool wait_for(UniqueLock& lock, const std::chrono::duration<Rep, Period>& timeout)
      IR_NO_THREAD_SAFETY_ANALYSIS {
    auto native = adopt(lock);
    const bool notified = cv_.wait_for(native, timeout) == std::cv_status::no_timeout;
    native.release();
    return notified;
  }

 private:
  static std::unique_lock<std::mutex> adopt(UniqueLock& lock) {
    return std::unique_lock<std::mutex>(lock.mutex().native(), std::adopt_lock);
  }

  std::condition_variable cv_;
};

}  // namespace ir::support
