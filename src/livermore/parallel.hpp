// IR-parallelized Livermore kernels.
//
// These are the payoff of the paper: sequential Livermore loops transformed
// into O(log n)-round parallel programs *without data-dependence analysis
// beyond the (f, g, h) index maps*:
//
//   kernel 3   inner product        -> Möbius chain over a virtual q-cell
//   kernel 5   tri-diagonal         -> LinearIrLoop (x[i] = -z·x[i-1] + z·y)
//   kernel 11  first sum            -> LinearIrLoop (and a scan baseline)
//   kernel 19  linear recurrence    -> LinearIrLoop over the carried stb5
//   kernel 23  2-D implicit hydro   -> SelfLinearIrLoop on the paper's
//                                      fragment (Section 3's worked example)
//   kernel 13  2-D PIC deposition   -> inspector/executor: the particle push
//                                      is embarrassingly parallel; the
//                                      histogram scatter becomes a
//                                      non-distinct-g GIR with op = +
//
// Every function takes the same workspace the sequential kernel takes and
// must produce identical results (tests compare element-wise, allowing only
// floating-point reassociation error).
#pragma once

#include "core/ordinary_ir.hpp"
#include "livermore/data.hpp"

namespace ir::livermore {

/// Kernel 3 (inner product) through the Möbius route.  Returns q.
double kernel03_parallel(Workspace& ws, const core::OrdinaryIrOptions& options = {});

/// Kernel 5 (tri-diagonal elimination) through the Möbius route.
double kernel05_parallel(Workspace& ws, const core::OrdinaryIrOptions& options = {});

/// Kernel 11 (first sum) through the Möbius route.
double kernel11_parallel(Workspace& ws, const core::OrdinaryIrOptions& options = {});

/// Kernel 11 through the classic Kogge-Stone scan (the baseline the paper's
/// references [2][4] correspond to).
double kernel11_scan(Workspace& ws, parallel::ThreadPool* pool = nullptr);

/// Kernel 19 (general linear recurrence, both sweeps) through the Möbius
/// route on the carried scalar chain.
double kernel19_parallel(Workspace& ws, const core::OrdinaryIrOptions& options = {});

/// The paper's loop-23 fragment through the self-referential Möbius form —
/// the Section-3 worked example ("thus, without using any data dependence
/// analysis techniques, we managed to parallelize the loop").
double kernel23_fragment_parallel(Workspace& ws,
                                  const core::OrdinaryIrOptions& options = {});

/// The same fragment through the classic SEGMENTED scan (one segment per
/// column of affine maps) — the baseline the IR route subsumes; provided so
/// the bench can compare the two mechanically.
double kernel23_fragment_segmented(Workspace& ws, parallel::ThreadPool* pool = nullptr);

/// Kernel 13 (2-D PIC): parallel particle push, then the histogram
/// deposition as a general IR with repeated writes (non-distinct g).
double kernel13_parallel(Workspace& ws, parallel::ThreadPool* pool = nullptr);

/// Kernel 21 (matrix product): the px(i,j) accumulations are 325 independent
/// reduction chains interleaved by the k loop — modeled as ONE linear IR
/// over virtual accumulator cells (the "indexed, not one linear chain"
/// classification made constructive).
double kernel21_parallel(Workspace& ws, const core::OrdinaryIrOptions& options = {});

/// Kernel 24 (first-minimum location) as an ArgMin reduction — commutative
/// and idempotent, so it runs through the scan machinery.
double kernel24_parallel(Workspace& ws, parallel::ThreadPool* pool = nullptr);

/// Kernel 14 (1-D PIC): the two per-particle phases run as parallel loops;
/// the weighted charge deposition (rh[ir[k]] += w, rh[ir[k]+1] += w') is
/// recorded by an inspector (core/inspector.hpp) and executed as a general
/// IR — the full inspector/executor pattern on a data-dependent scatter.
double kernel14_parallel(Workspace& ws, parallel::ThreadPool* pool = nullptr);

}  // namespace ir::livermore
