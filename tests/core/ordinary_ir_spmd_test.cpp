#include "core/ordinary_ir_spmd.hpp"

#include <gtest/gtest.h>

#include "algebra/monoids.hpp"
#include "testing/random_systems.hpp"

namespace ir::core {
namespace {

using algebra::AddMonoid;
using algebra::ConcatMonoid;
using testing::random_initial_u64;
using testing::random_ordinary_system;

TEST(SpmdIrTest, MatchesSequentialSingleWorker) {
  support::SplitMix64 rng(101);
  const auto sys = random_ordinary_system(300, 400, rng, 0.8);
  const auto init = random_initial_u64(400, rng);
  const auto op = AddMonoid<std::uint64_t>{};
  EXPECT_EQ(ordinary_ir_spmd(op, sys, init, 1), ordinary_ir_sequential(op, sys, init));
}

TEST(SpmdIrTest, MatchesSequentialAcrossWorkerCounts) {
  support::SplitMix64 rng(102);
  const auto sys = random_ordinary_system(1000, 1400, rng, 0.9);
  const auto init = random_initial_u64(1400, rng);
  const auto op = AddMonoid<std::uint64_t>{};
  const auto expect = ordinary_ir_sequential(op, sys, init);
  for (std::size_t workers : {2u, 3u, 4u, 7u}) {
    EXPECT_EQ(ordinary_ir_spmd(op, sys, init, workers), expect) << workers;
  }
}

TEST(SpmdIrTest, NonCommutativeOrderPreserved) {
  support::SplitMix64 rng(103);
  const auto sys = random_ordinary_system(200, 300, rng, 0.8);
  std::vector<std::string> init(300);
  for (std::size_t c = 0; c < 300; ++c) init[c] = std::string(1, char('a' + c % 26));
  EXPECT_EQ(ordinary_ir_spmd(ConcatMonoid{}, sys, init, 4),
            ordinary_ir_sequential(ConcatMonoid{}, sys, init));
}

TEST(SpmdIrTest, RoundsMatchOneLevelEngine) {
  support::SplitMix64 rng(104);
  const auto sys = random_ordinary_system(2000, 2600, rng, 0.9);
  const auto init = random_initial_u64(2600, rng);
  const auto op = AddMonoid<std::uint64_t>{};

  OrdinaryIrStats one_level;
  OrdinaryIrOptions options;
  options.stats = &one_level;
  (void)ordinary_ir_parallel(op, sys, init, options);

  OrdinaryIrStats spmd;
  (void)ordinary_ir_spmd(op, sys, init, 3, &spmd);
  EXPECT_EQ(spmd.rounds, one_level.rounds);
}

TEST(SpmdIrTest, EmptySystem) {
  OrdinaryIrSystem sys{4, {}, {}};
  EXPECT_EQ(ordinary_ir_spmd(AddMonoid<std::uint64_t>{}, sys, {9, 8, 7, 6}, 4),
            (std::vector<std::uint64_t>{9, 8, 7, 6}));
}

TEST(SpmdIrTest, MoreWorkersThanEquations) {
  OrdinaryIrSystem sys{4, {0, 1}, {1, 2}};
  const std::vector<std::uint64_t> init{1, 10, 100, 1000};
  EXPECT_EQ(ordinary_ir_spmd(AddMonoid<std::uint64_t>{}, sys, init, 16),
            ordinary_ir_sequential(AddMonoid<std::uint64_t>{}, sys, init));
}

TEST(SpmdRegionTest, SliceCoversRange) {
  parallel::run_spmd(5, [](parallel::SpmdContext& ctx) {
    const auto [begin, end] = ctx.slice(23);
    EXPECT_LE(begin, end);
    EXPECT_LE(end, 23u);
  });
}

TEST(SpmdRegionTest, BarrierSynchronizes) {
  std::vector<int> stage(4, 0);
  parallel::run_spmd(4, [&](parallel::SpmdContext& ctx) {
    stage[ctx.worker()] = 1;
    ctx.barrier();
    for (int s : stage) EXPECT_EQ(s, 1);  // all workers passed stage 1
    ctx.barrier();
    stage[ctx.worker()] = 2;
  });
  for (int s : stage) EXPECT_EQ(s, 2);
}

TEST(SpmdRegionTest, ExceptionIsRethrownWithoutDeadlock) {
  EXPECT_THROW(parallel::run_spmd(3,
                                  [](parallel::SpmdContext& ctx) {
                                    if (ctx.worker() == 1) throw std::runtime_error("w1");
                                    ctx.barrier();  // others still pass
                                  }),
               std::runtime_error);
}

TEST(SpmdRegionTest, RejectsZeroWorkers) {
  EXPECT_THROW(parallel::run_spmd(0, [](parallel::SpmdContext&) {}),
               support::ContractViolation);
}

}  // namespace
}  // namespace ir::core
