// Deterministic random generation for tests and workload construction.
//
// All randomized workloads in the repository (random IR systems, random DAGs,
// Livermore-style data) flow through this SplitMix64 generator so that every
// test and bench is reproducible from a printed seed.
#pragma once

#include <cstdint>
#include <vector>

#include "support/contract.hpp"

namespace ir::support {

/// SplitMix64: tiny, fast, passes BigCrush; ideal for reproducible workloads.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform value in [0, bound) — bound must be positive.
  std::uint64_t below(std::uint64_t bound) {
    IR_REQUIRE(bound > 0, "below() bound must be positive");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform value in [lo, hi] inclusive.
  std::uint64_t between(std::uint64_t lo, std::uint64_t hi) {
    IR_REQUIRE(lo <= hi, "between() requires lo <= hi");
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform01() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform01(); }

  /// Bernoulli trial with probability p.
  bool chance(double p) noexcept { return uniform01() < p; }

 private:
  std::uint64_t state_;
};

/// Random permutation of {0, ..., n-1} (Fisher-Yates).
std::vector<std::size_t> random_permutation(std::size_t n, SplitMix64& rng);

/// Random injective map {0..n-1} -> {0..m-1}; requires m >= n.
/// Returned vector `v` has v[i] = image of i, all distinct.
std::vector<std::size_t> random_injection(std::size_t n, std::size_t m, SplitMix64& rng);

}  // namespace ir::support
