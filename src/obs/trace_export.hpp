// Chrome trace_event exporter.
//
// Writes the JSON-object form of the Trace Event Format — the file
// chrome://tracing and https://ui.perfetto.dev open directly.  Each
// TrackDump becomes one track (a `thread_name` metadata event plus its
// spans as "X" complete events); events within a track are sorted by start
// time so `ts` is monotone per track.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "obs/span.hpp"

namespace ir::obs {

/// Serialize the tracks as a Chrome trace_event JSON document.
std::string chrome_trace_json(std::vector<TrackDump> tracks);

/// Stream variant of chrome_trace_json.
void write_chrome_trace(std::ostream& out, std::vector<TrackDump> tracks);

/// Drain the process tracer and write its trace to `path`.  Throws
/// ir::support::ContractViolation when the file cannot be opened.
void write_chrome_trace_file(const std::string& path);

}  // namespace ir::obs
