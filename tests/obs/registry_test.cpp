// Metrics registry: shard merging, kinds, and merge-under-concurrency.
#include "obs/registry.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"

namespace {

using namespace ir;

TEST(Registry, CounterAccumulatesOnOneThread) {
  auto counter = obs::registry().counter("test.registry.single");
  const std::uint64_t before = obs::registry().snapshot().counter("test.registry.single");
  counter.add();
  counter.add(41);
  const auto snap = obs::registry().snapshot();
  EXPECT_EQ(snap.counter("test.registry.single"), before + 42);
}

TEST(Registry, ReRegisteringSameNameSharesTheSlot) {
  auto a = obs::registry().counter("test.registry.shared");
  auto b = obs::registry().counter("test.registry.shared");
  const std::uint64_t before = obs::registry().snapshot().counter("test.registry.shared");
  a.add(1);
  b.add(2);
  EXPECT_EQ(obs::registry().snapshot().counter("test.registry.shared"), before + 3);
}

TEST(Registry, KindMismatchThrows) {
  obs::registry().counter("test.registry.kind_clash");
  EXPECT_THROW(obs::registry().gauge("test.registry.kind_clash"),
               support::ContractViolation);
  EXPECT_THROW(obs::registry().histogram("test.registry.kind_clash"),
               support::ContractViolation);
}

TEST(Registry, UnknownMetricReadsAsZero) {
  const auto snap = obs::registry().snapshot();
  EXPECT_EQ(snap.counter("test.registry.never_registered"), 0u);
  EXPECT_EQ(snap.gauge("test.registry.never_registered"), 0u);
}

// The tentpole requirement: N threads bump counters through parallel_for;
// after the join the flush equals the exact expected totals — no lost or
// double-counted shard merges.
TEST(Registry, MergeUnderConcurrencyViaParallelFor) {
  auto counter = obs::registry().counter("test.registry.concurrent");
  auto histogram = obs::registry().histogram("test.registry.concurrent_hist");
  const std::uint64_t count_before =
      obs::registry().snapshot().counter("test.registry.concurrent");

  constexpr std::size_t kItems = 100000;
  parallel::ThreadPool pool(8);
  parallel::parallel_for(pool, kItems, [&](std::size_t i) {
    counter.add(i);
    histogram.record(i);
  });

  // parallel_for joined, so every relaxed add happened-before this snapshot.
  const auto snap = obs::registry().snapshot();
  const std::uint64_t expected =
      static_cast<std::uint64_t>(kItems) * (kItems - 1) / 2;
  EXPECT_EQ(snap.counter("test.registry.concurrent") - count_before, expected);
  EXPECT_EQ(snap.histograms.at("test.registry.concurrent_hist").count(), kItems);
}

// A shard must survive its thread: counts bumped on pool workers that have
// since been joined (pool destroyed) must still appear in the snapshot.
TEST(Registry, RetiredShardsKeepTheirCounts) {
  auto counter = obs::registry().counter("test.registry.retired");
  const std::uint64_t before = obs::registry().snapshot().counter("test.registry.retired");
  {
    parallel::ThreadPool pool(4);
    parallel::parallel_for(pool, 1000, [&](std::size_t) { counter.add(); });
  }  // workers joined and their thread-local shards destroyed here
  EXPECT_EQ(obs::registry().snapshot().counter("test.registry.retired") - before, 1000u);
}

TEST(Registry, GaugeMergesWithMaxAcrossThreads) {
  auto gauge = obs::registry().gauge("test.registry.gauge_max");
  std::vector<std::thread> threads;
  for (std::uint64_t value : {7u, 100u, 23u}) {
    threads.emplace_back([&gauge, value] { gauge.record_max(value); });
  }
  for (auto& thread : threads) thread.join();
  gauge.record_max(5);
  EXPECT_EQ(obs::registry().snapshot().gauge("test.registry.gauge_max"), 100u);
}

TEST(Registry, HistogramBucketsAreLogLinear) {
  // The linear region is exact: one bucket per value below 2^kSubBits.
  for (std::uint64_t v = 0; v < obs::kHistogramSubBuckets; ++v) {
    EXPECT_EQ(obs::Histogram::bucket_of(v), v);
  }
  // Past the linear region, values 3 and 4 no longer share a bucket — the
  // old power-of-two scheme collapsed them, which is what this pins against.
  EXPECT_NE(obs::Histogram::bucket_of(8), obs::Histogram::bucket_of(15));
  EXPECT_EQ(obs::Histogram::bucket_of(~0ull), obs::kHistogramBuckets - 1);
}

TEST(Registry, HistogramSnapshotCarriesSumAndQuantiles) {
  auto histogram = obs::registry().histogram("test.registry.sum_hist");
  for (std::uint64_t v : {10u, 20u, 30u, 40u}) histogram.record(v);
  const auto snap = obs::registry().snapshot().histogram("test.registry.sum_hist");
  EXPECT_EQ(snap.count(), 4u);
  EXPECT_EQ(snap.sum, 100u);
  EXPECT_DOUBLE_EQ(snap.mean(), 25.0);
  // p50 is the 2nd of 4 samples (value 20); bucket error ≤ 12.5%.
  EXPECT_NEAR(snap.quantile(0.5), 20.0, 20.0 * 0.125 + 1.0);
}

}  // namespace
