// SPMD region: P persistent workers with a shared barrier.
//
// The paper's processor-capped algorithm forks P processes ONCE and runs all
// ⌈log n⌉ rounds inside them, synchronizing at round boundaries — unlike the
// parallel_for path, which pays a fork/join per round.  This module provides
// that execution shape: run_spmd spawns P threads, every thread runs the same
// body with its worker id, and ctx.barrier() lines them up between phases.
// The ABL-6 bench measures what the fork-per-round overhead costs.
#pragma once

#include <barrier>
#include <cstddef>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "support/contract.hpp"

namespace ir::parallel {

/// Per-worker view of an SPMD region.
class SpmdContext {
 public:
  /// This worker's id in [0, workers()).
  [[nodiscard]] std::size_t worker() const noexcept { return worker_; }

  /// Total workers in the region.
  [[nodiscard]] std::size_t workers() const noexcept { return workers_; }

  /// Block-synchronize: returns when every worker reached the barrier.
  void barrier() { barrier_->arrive_and_wait(); }

  /// This worker's contiguous sub-range of [0, n): [begin, end).
  [[nodiscard]] std::pair<std::size_t, std::size_t> slice(std::size_t n) const noexcept {
    const std::size_t base = n / workers_, extra = n % workers_;
    const std::size_t begin = worker_ * base + std::min(worker_, extra);
    return {begin, begin + base + (worker_ < extra ? 1 : 0)};
  }

 private:
  friend void run_spmd(std::size_t, const std::function<void(SpmdContext&)>&);
  SpmdContext(std::size_t worker, std::size_t workers, std::barrier<>* barrier)
      : worker_(worker), workers_(workers), barrier_(barrier) {}

  std::size_t worker_;
  std::size_t workers_;
  std::barrier<>* barrier_;
};

/// Run `body` on `workers` freshly spawned threads (ids 0..workers-1) and
/// join them.  If any worker throws, the FIRST exception is rethrown after
/// all workers finished.  CAUTION: a body that throws between barriers on
/// one worker while others still wait would deadlock — bodies must keep
/// their barrier() call counts identical across workers on all paths, so
/// the implementation treats a thrown body as fatal only after draining the
/// barrier (each worker's wrapper keeps arriving until join).
void run_spmd(std::size_t workers, const std::function<void(SpmdContext&)>& body);

}  // namespace ir::parallel
