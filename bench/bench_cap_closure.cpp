// CAP closure scaling (google-benchmark): the Section-4 machinery.
//
//   BM_CapChain      — single dependence chain (list traces): the easy case.
//   BM_CapFibonacci  — the paper's A[i-1]*A[i-2] graph: BigUint labels grow
//                      like Fibonacci numbers; measures the real cost of the
//                      power-as-atomic assumption.
//   BM_CapReferenceDp— the sequential work-efficient DP on the same graphs.
//   BM_GirEndToEnd   — full GIR solve (graph build + CAP + powered eval).
// Exercises the deprecated one-shot shims (core/compat.hpp) on purpose;
// the define keeps -Werror builds green without losing the diagnostic
// elsewhere.
#define IR_COMPAT_ALLOW_DEPRECATED
#include <benchmark/benchmark.h>

#include "algebra/monoids.hpp"
#include "core/compat.hpp"
#include "core/general_ir.hpp"
#include "graph/cap.hpp"
#include "testing_workloads.hpp"

namespace {

using namespace ir;

graph::LabeledDag chain_graph(std::size_t n) {
  graph::LabeledDag g(n);
  for (std::size_t v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
  return g;
}

graph::LabeledDag fibonacci_graph(std::size_t n) {
  graph::LabeledDag g(n);
  for (std::size_t i = 2; i < n; ++i) {
    g.add_edge(i, i - 1);
    g.add_edge(i, i - 2);
  }
  return g;
}

void BM_CapChain(benchmark::State& state) {
  const auto g = chain_graph(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::cap_closure(g));
  }
}
BENCHMARK(BM_CapChain)->Arg(1000)->Arg(10000);

void BM_CapFibonacci(benchmark::State& state) {
  const auto g = fibonacci_graph(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::cap_closure(g));
  }
}
BENCHMARK(BM_CapFibonacci)->Arg(256)->Arg(512)->Arg(1024);

void BM_CapFibonacciPooled(benchmark::State& state) {
  const auto g = fibonacci_graph(static_cast<std::size_t>(state.range(0)));
  parallel::ThreadPool pool(4);
  graph::CapOptions options;
  options.pool = &pool;
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::cap_closure(g, options));
  }
}
BENCHMARK(BM_CapFibonacciPooled)->Arg(512)->Arg(1024);

void BM_CapReferenceDp(benchmark::State& state) {
  const auto g = fibonacci_graph(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::path_counts_reference(g));
  }
}
BENCHMARK(BM_CapReferenceDp)->Arg(256)->Arg(512)->Arg(1024);

void BM_GirEndToEnd(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  support::SplitMix64 rng(n);
  const auto sys = bench::random_general_system(n, n / 2, rng, 0.7);
  algebra::ModMulMonoid op(1'000'000'007ull);
  std::vector<std::uint64_t> init(n / 2);
  for (auto& v : init) v = 1 + rng.below(1'000'000'006ull);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::general_ir_parallel(op, sys, init));
  }
}
BENCHMARK(BM_GirEndToEnd)->Arg(500)->Arg(1000)->Arg(2000);

void BM_GirSequentialBaseline(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  support::SplitMix64 rng(n);
  const auto sys = bench::random_general_system(n, n / 2, rng, 0.7);
  algebra::ModMulMonoid op(1'000'000'007ull);
  std::vector<std::uint64_t> init(n / 2);
  for (auto& v : init) v = 1 + rng.below(1'000'000'006ull);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::general_ir_sequential(op, sys, init));
  }
}
BENCHMARK(BM_GirSequentialBaseline)->Arg(500)->Arg(1000)->Arg(2000);

}  // namespace
