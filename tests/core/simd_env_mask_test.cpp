// Runs with IR_SIMD=scalar in the environment (set by tests/CMakeLists.txt):
// the dispatch seam must pick the portable fallback even on an AVX2-capable
// CPU in an IR_SIMD=ON build, and the kernels must keep producing the same
// bytes.  This is the runtime half of the CI IR_SIMD=OFF leg — same
// contract, probed without a reconfigure.
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "algebra/monoids.hpp"
#include "core/execute_wide.hpp"
#include "core/ordinary_ir.hpp"
#include "core/simd.hpp"

namespace ir::core {
namespace {

TEST(SimdEnvMaskTest, EnvironmentMaskForcesScalarDispatch) {
  ASSERT_NE(std::getenv("IR_SIMD"), nullptr)
      << "this binary must run with IR_SIMD=scalar (see tests/CMakeLists.txt)";
  EXPECT_EQ(simd::active_mode(), simd::Mode::kScalar);
  EXPECT_STREQ(simd::to_string(simd::active_mode()), "scalar");
}

TEST(SimdEnvMaskTest, MaskedKernelsStillComputeCorrectRows) {
  std::vector<std::uint64_t> a{1, 2, 3, 4, 5, 6, 7};
  std::vector<std::uint64_t> b{10, 20, 30, 40, 50, 60, 70};
  std::vector<std::uint64_t> out(a.size());
  simd::add_rows_u64(a.data(), b.data(), out.data(), a.size());
  EXPECT_EQ(out, (std::vector<std::uint64_t>{11, 22, 33, 44, 55, 66, 77}));
}

TEST(SimdEnvMaskTest, WideExecutionIsUnchangedUnderTheMask) {
  OrdinaryIrSystem chain;
  chain.cells = 129;
  for (std::size_t i = 0; i + 1 < chain.cells; ++i) {
    chain.f.push_back(i);
    chain.g.push_back(i + 1);
  }
  const Plan plan = compile_plan(chain);
  const algebra::AddMonoid<std::uint64_t> add;
  std::vector<std::vector<std::uint64_t>> rows(4);
  for (std::size_t k = 0; k < rows.size(); ++k) {
    for (std::size_t c = 0; c < chain.cells; ++c) rows[k].push_back(c + k + 1);
  }
  const auto wide =
      execute_wide(plan, add, BatchView<std::uint64_t>::from_rows(rows, plan.cells));
  for (std::size_t lane = 0; lane < rows.size(); ++lane) {
    const auto scalar = execute_plan(plan, add, rows[lane]);
    for (std::size_t cell = 0; cell < plan.cells; ++cell) {
      ASSERT_EQ(wide.at(cell, lane), scalar[cell]);
    }
  }
}

}  // namespace
}  // namespace ir::core
