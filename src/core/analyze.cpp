#include "core/analyze.hpp"

#include <algorithm>
#include <bit>

#include "parallel/parallel_for.hpp"

namespace ir::core {

namespace {

/// Crossing fraction over precomputed pred arrays, using the real
/// partition_blocks split (uneven tail blocks and all) — never the
/// ceil-division chunks an estimator might guess.
double cross_block_fraction_of(const std::vector<std::size_t>& pred_f,
                               const std::vector<std::size_t>& pred_h,
                               std::size_t blocks) {
  const std::size_t n = pred_f.size();
  if (n == 0) return 0.0;
  const auto parts = parallel::partition_blocks(n, std::max<std::size_t>(blocks, 1));
  std::vector<std::uint32_t> block_of(n);
  for (std::size_t b = 0; b < parts.size(); ++b) {
    for (std::size_t i = parts[b].begin; i < parts[b].end; ++i) {
      block_of[i] = static_cast<std::uint32_t>(b);
    }
  }
  std::size_t crossing = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (const std::size_t p : {pred_f[i], pred_h[i]}) {
      if (p != kNone && block_of[p] != block_of[i]) {
        ++crossing;
        break;
      }
    }
  }
  return static_cast<double>(crossing) / static_cast<double>(n);
}

}  // namespace

std::string to_string(SolverRoute route) {
  switch (route) {
    case SolverRoute::kElementwiseParallel: return "elementwise parallel";
    case SolverRoute::kScanOrMoebius: return "pair scan / Moebius IR";
    case SolverRoute::kOrdinaryJumping: return "ordinary IR pointer jumping";
    case SolverRoute::kGeneralCap: return "general IR via CAP";
  }
  return "?";
}

SystemReport analyze(const GeneralIrSystem& sys) {
  sys.validate();
  SystemReport report;
  report.iterations = sys.iterations();
  report.cells = sys.cells;
  report.loop_class = classify(sys);
  switch (report.loop_class) {
    case LoopClass::kNoRecurrence:
      report.route = SolverRoute::kElementwiseParallel;
      break;
    case LoopClass::kLinearRecurrence:
      report.route = SolverRoute::kScanOrMoebius;
      break;
    case LoopClass::kOrdinaryIndexed:
      report.route = SolverRoute::kOrdinaryJumping;
      break;
    case LoopClass::kGeneralIndexed:
      report.route = SolverRoute::kGeneralCap;
      break;
  }

  const std::size_t n = sys.iterations();
  const auto pred_f = last_writer_before(sys.g, sys.f, sys.cells);
  const auto pred_h = last_writer_before(sys.g, sys.h, sys.cells);

  std::vector<std::size_t> depth(n, 1);
  std::vector<bool> written(sys.cells, false);
  std::vector<bool> initially_read(sys.cells, false);
  std::size_t total_depth = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t d = 1;
    bool has_dep = false;
    for (const std::size_t p : {pred_f[i], pred_h[i]}) {
      if (p == kNone) continue;
      has_dep = true;
      ++report.dependences;
      d = std::max(d, depth[p] + 1);
    }
    if (pred_f[i] == kNone) initially_read[sys.f[i]] = true;
    if (pred_h[i] == kNone) initially_read[sys.h[i]] = true;
    if (!has_dep) ++report.roots;
    if (written[sys.g[i]]) ++report.repeated_writes;
    written[sys.g[i]] = true;
    depth[i] = d;
    report.depth = std::max(report.depth, d);
    total_depth += d;
  }
  report.mean_depth = n == 0 ? 0.0 : static_cast<double>(total_depth) / static_cast<double>(n);
  for (std::size_t c = 0; c < sys.cells; ++c) {
    if (initially_read[c]) ++report.initial_reads;
  }
  report.predicted_rounds =
      report.depth <= 1 ? 0 : static_cast<std::size_t>(std::bit_width(report.depth - 1));

  for (std::size_t blocks = 2; blocks <= 256 && blocks <= std::max<std::size_t>(n, 2);
       blocks *= 2) {
    if (n == 0) break;
    report.cross_block_fraction.emplace_back(
        blocks, cross_block_fraction_of(pred_f, pred_h, blocks));
  }
  return report;
}

double measure_cross_block_fraction(const GeneralIrSystem& sys, std::size_t blocks) {
  sys.validate();
  const auto pred_f = last_writer_before(sys.g, sys.f, sys.cells);
  const auto pred_h = last_writer_before(sys.g, sys.h, sys.cells);
  return cross_block_fraction_of(pred_f, pred_h, blocks);
}

SystemReport analyze(const OrdinaryIrSystem& sys) {
  return analyze(GeneralIrSystem::from_ordinary(sys));
}

std::string SystemReport::to_string() const {
  std::string out;
  out += "class:            " + core::to_string(loop_class) + "\n";
  out += "recommended:      " + core::to_string(route) + "\n";
  out += "equations:        " + std::to_string(iterations) + " over " +
         std::to_string(cells) + " cells\n";
  out += "dependences:      " + std::to_string(dependences) + " (" +
         std::to_string(roots) + " root equations, " + std::to_string(repeated_writes) +
         " repeated writes)\n";
  out += "chain depth:      max " + std::to_string(depth) + ", mean " +
         std::to_string(mean_depth) + "\n";
  out += "initial reads:    " + std::to_string(initial_reads) + " cells\n";
  out += "predicted rounds: " + std::to_string(predicted_rounds) + "\n";
  for (const auto& [blocks, fraction] : cross_block_fraction) {
    out += "cross-block@" + std::to_string(blocks) + ":   " +
           std::to_string(fraction) + "\n";
  }
  return out;
}

}  // namespace ir::core
