#include "service/server_core.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "obs/clock.hpp"
#include "obs/telemetry.hpp"
#include "service/request_trace.hpp"
#include "support/contract.hpp"

namespace ir::service {

std::string to_string(Status status) {
  switch (status) {
    case Status::kOk: return "ok";
    case Status::kRejectedQueueFull: return "queue-full";
    case Status::kRejectedBackpressure: return "backpressure";
    case Status::kRejectedShutdown: return "shutdown";
    case Status::kRejectedInvalid: return "invalid";
    case Status::kDeadlineExpired: return "deadline-expired";
    case Status::kCancelled: return "cancelled";
    case Status::kFailed: return "failed";
  }
  return "unknown";
}

std::string ServiceStats::to_string() const {
  std::string out;
  auto field = [&out](const char* name, std::uint64_t value) {
    if (!out.empty()) out += ' ';
    out += name;
    out += '=';
    out += std::to_string(value);
  };
  field("accepted", accepted);
  field("rejected_queue_full", rejected_queue_full);
  field("rejected_backpressure", rejected_backpressure);
  field("rejected_shutdown", rejected_shutdown);
  field("rejected_invalid", rejected_invalid);
  field("executed_ok", executed_ok);
  field("executed_failed", executed_failed);
  field("deadline_misses", deadline_misses);
  field("cancelled", cancelled);
  field("dispatched", dispatched);
  field("replied", replied);
  field("ticker_samples", ticker_samples);
  field("batches", batches);
  field("coalesced_requests", coalesced_requests);
  field("peak_batch", peak_batch);
  field("peak_queue_depth", peak_queue_depth);
  field("queue_depth", queue_depth);
  field("in_flight", in_flight);
  field("plan_cache_hits", plan_cache_hits);
  field("plan_cache_misses", plan_cache_misses);
  field("plan_cache_collisions", plan_cache_collisions);
  field("plan_compiles", plan_compiles);
  field("plan_store_hits", plan_store_hits);
  field("plan_store_misses", plan_store_misses);
  field("plan_store_rejects", plan_store_rejects);
  field("plan_store_puts", plan_store_puts);
  field("plan_store_preloaded", plan_store_preloaded);
  return out;
}

namespace detail {

namespace {

void bump_max(std::atomic<std::uint64_t>& slot, std::uint64_t value) {
  std::uint64_t seen = slot.load(std::memory_order_relaxed);
  while (seen < value &&
         !slot.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

std::int64_t signed_nanos(Clock::duration d) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(d).count();
}

}  // namespace

// PendingBase::finish lives here (not in a request.cpp) because the
// bookkeeping it routes to needs the complete ServerCore type.
void PendingBase::finish(Status status, const std::string& error,
                         const ResponseInfo& info) {
  if (finished_.exchange(true, std::memory_order_acq_rel)) return;
  trace.finished_ns = obs::now_ns();
  ResponseInfo out = info;
  if (core != nullptr) core->on_finished(*this, status, out);
  out.trace = trace;
  fulfill(status, error, out);
}

ServerCore::ServerCore(const ServiceConfig& config, BatchFn execute_batch)
    : config_(config), execute_batch_(std::move(execute_batch)) {
  IR_REQUIRE(config_.queue_capacity >= 1, "service queue needs capacity >= 1");
  IR_REQUIRE(config_.dispatchers >= 1, "service needs at least one dispatcher");
  IR_REQUIRE(config_.max_batch >= 1, "service max_batch must be >= 1");
  IR_REQUIRE(config_.high_watermark <= config_.queue_capacity,
             "high watermark cannot exceed the queue capacity");
  IR_REQUIRE(config_.low_watermark <= config_.high_watermark,
             "low watermark cannot exceed the high watermark");
  IR_REQUIRE(execute_batch_ != nullptr, "service needs a batch executor");
  if (config_.exec_threads > 0) {
    pools_.reserve(config_.dispatchers);
    for (std::size_t i = 0; i < config_.dispatchers; ++i) {
      pools_.push_back(std::make_unique<parallel::ThreadPool>(config_.exec_threads));
    }
  }
  dispatchers_.reserve(config_.dispatchers);
  for (std::size_t i = 0; i < config_.dispatchers; ++i) {
    dispatchers_.emplace_back([this, i] { dispatch_loop(i); });
  }
  if (config_.ticker_interval_ms > 0) {
    ticker_ = std::thread([this] { ticker_loop(); });
  }
}

ServerCore::~ServerCore() { shutdown(); }

Admission ServerCore::try_submit(std::shared_ptr<PendingBase> pending) {
  {
    support::LockGuard lock(mutex_);
    if (!accepting_) {
      rejected_shutdown_.fetch_add(1, std::memory_order_relaxed);
      IR_COUNTER_ADD("service.rejected", 1);
      return Admission::kShuttingDown;
    }
    if (queue_.size() >= config_.queue_capacity) {
      rejected_queue_full_.fetch_add(1, std::memory_order_relaxed);
      IR_COUNTER_ADD("service.rejected", 1);
      return Admission::kQueueFull;
    }
    if (config_.high_watermark > 0) {
      // Hysteresis: trip at high, re-admit only once drained to low — a
      // queue oscillating around one threshold would otherwise flap between
      // accept and reject on every dispatch.
      if (overloaded_ && queue_.size() <= config_.low_watermark) overloaded_ = false;
      if (!overloaded_ && queue_.size() >= config_.high_watermark) overloaded_ = true;
      if (overloaded_) {
        rejected_backpressure_.fetch_add(1, std::memory_order_relaxed);
        IR_COUNTER_ADD("service.rejected", 1);
        return Admission::kBackpressure;
      }
    }
    pending->enqueued_at = Clock::now();
    pending->trace.accepted_ns = obs::now_ns();
    pending->core = this;
    queue_.push_back(std::move(pending));
    peak_queue_depth_ = std::max<std::uint64_t>(peak_queue_depth_, queue_.size());
    accepted_.fetch_add(1, std::memory_order_relaxed);
    IR_COUNTER_ADD("service.accepted", 1);
    IR_GAUGE_MAX("service.queue_depth", queue_.size());
  }
  work_available_.notify_one();
  return Admission::kAccepted;
}

void ServerCore::drain() {
  support::UniqueLock lock(mutex_);
  accepting_ = false;
  while (!queue_.empty() || in_flight_ != 0) idle_.wait(lock);
}

void ServerCore::shutdown() {
  support::LockGuard lifecycle(lifecycle_mutex_);
  if (joined_) return;
  drain();
  {
    support::LockGuard lock(mutex_);
    stopping_ = true;
    ticker_stop_ = true;
  }
  work_available_.notify_all();
  ticker_cv_.notify_all();
  for (auto& thread : dispatchers_) thread.join();
  if (ticker_.joinable()) ticker_.join();
  joined_ = true;
}

void ServerCore::note_rejected_invalid() {
  rejected_invalid_.fetch_add(1, std::memory_order_relaxed);
  IR_COUNTER_ADD("service.rejected", 1);
}

void ServerCore::on_finished(PendingBase& pending, Status status,
                             const ResponseInfo& info) {
  switch (status) {
    case Status::kOk:
      executed_ok_.fetch_add(1, std::memory_order_relaxed);
      break;
    case Status::kFailed:
      executed_failed_.fetch_add(1, std::memory_order_relaxed);
      break;
    case Status::kDeadlineExpired:
      deadline_misses_.fetch_add(1, std::memory_order_relaxed);
      IR_COUNTER_ADD("service.deadline_misses", 1);
      break;
    case Status::kCancelled:
      cancelled_.fetch_add(1, std::memory_order_relaxed);
      IR_COUNTER_ADD("service.cancelled", 1);
      break;
    default:
      // Rejects never carry a core pointer; reaching here is a logic error,
      // but the ledger must not silently swallow it in release builds.
      executed_failed_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  replied_.fetch_add(1, std::memory_order_relaxed);
  IR_COUNTER_ADD("service.replied", 1);

  RequestTrace& trace = pending.trace;
  if (pending.deadline != Clock::time_point::max()) {
    trace.deadline_slack_ns = signed_nanos(pending.deadline - Clock::now());
    // Slack is only meaningful in the histogram when non-negative (misses
    // are already a counter); clamp rather than wrap.
    IR_HISTOGRAM("service.deadline_slack_us",
                 trace.deadline_slack_ns > 0
                     ? static_cast<std::uint64_t>(trace.deadline_slack_ns) / 1000
                     : 0);
  }
  IR_HISTOGRAM("service.latency.queue_us", trace.queue_ns() / 1000);
  if (trace.dispatched_ns != 0) {
    IR_HISTOGRAM("service.latency.execute_us", trace.execute_ns() / 1000);
  }
  IR_HISTOGRAM("service.latency.total_us", trace.total_ns() / 1000);

  if (config_.slow_log != nullptr && config_.slow_request_ns > 0 &&
      trace.total_ns() >= config_.slow_request_ns) {
    config_.slow_log->record(trace, status, info);
  }
}

void ServerCore::ticker_loop() {
  IR_SET_THREAD_NAME("service-ticker");
  support::UniqueLock lock(mutex_);
  while (!ticker_stop_) {
    const std::size_t depth = queue_.size();
    const std::size_t inflight = in_flight_;
    lock.unlock();
    IR_GAUGE_MAX("service.queue_depth", depth);
    IR_GAUGE_MAX("service.in_flight", inflight);
    IR_HISTOGRAM("service.queue_depth_sample", depth);
    ticker_samples_.fetch_add(1, std::memory_order_relaxed);
    lock.lock();
    // Re-check after the unlocked gauge window: a shutdown() signalled there
    // would find nobody waiting, and the plain wait_for below must not add a
    // full extra interval to join.  A spurious wakeup just costs one sample.
    if (ticker_stop_) break;
    ticker_cv_.wait_for(lock, std::chrono::milliseconds(config_.ticker_interval_ms));
  }
}

ServiceStats ServerCore::stats() const {
  ServiceStats out;
  out.accepted = accepted_.load(std::memory_order_relaxed);
  out.rejected_queue_full = rejected_queue_full_.load(std::memory_order_relaxed);
  out.rejected_backpressure = rejected_backpressure_.load(std::memory_order_relaxed);
  out.rejected_shutdown = rejected_shutdown_.load(std::memory_order_relaxed);
  out.rejected_invalid = rejected_invalid_.load(std::memory_order_relaxed);
  out.executed_ok = executed_ok_.load(std::memory_order_relaxed);
  out.executed_failed = executed_failed_.load(std::memory_order_relaxed);
  out.deadline_misses = deadline_misses_.load(std::memory_order_relaxed);
  out.cancelled = cancelled_.load(std::memory_order_relaxed);
  out.dispatched = dispatched_.load(std::memory_order_relaxed);
  out.replied = replied_.load(std::memory_order_relaxed);
  out.ticker_samples = ticker_samples_.load(std::memory_order_relaxed);
  out.batches = batches_.load(std::memory_order_relaxed);
  out.coalesced_requests = coalesced_requests_.load(std::memory_order_relaxed);
  out.peak_batch = peak_batch_.load(std::memory_order_relaxed);
  {
    support::LockGuard lock(mutex_);
    out.peak_queue_depth = peak_queue_depth_;
    out.queue_depth = queue_.size();
    out.in_flight = in_flight_;
  }
  return out;
}

std::vector<std::shared_ptr<PendingBase>> ServerCore::claim_group_locked() {
  std::vector<std::shared_ptr<PendingBase>> group;
  group.push_back(std::move(queue_.front()));
  queue_.pop_front();
  const std::uint64_t key = group.front()->coalesce_key;
  for (auto it = queue_.begin();
       it != queue_.end() && group.size() < config_.max_batch;) {
    if ((*it)->coalesce_key == key) {
      group.push_back(std::move(*it));
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
  return group;
}

void ServerCore::run_batch(std::vector<std::shared_ptr<PendingBase>> batch,
                           parallel::ThreadPool* pool) {
  const Clock::time_point now = Clock::now();
  const std::uint64_t coalesced_ns = obs::now_ns();
  const std::uint64_t batch_id = batch_ids_.next();
  std::vector<std::shared_ptr<PendingBase>> live;
  live.reserve(batch.size());
  for (auto& pending : batch) {
    pending->trace.coalesced_ns = coalesced_ns;
    pending->trace.batch_id = batch_id;
    ResponseInfo info;
    info.wait = now - pending->enqueued_at;
    // Terminal counters (cancelled/deadline_misses) are bumped centrally by
    // on_finished via finish() — triage only decides the status.
    if (pending->cancel && pending->cancel->load(std::memory_order_acquire)) {
      pending->finish(Status::kCancelled, "cancel token fired before execute", info);
    } else if (pending->deadline <= now) {
      pending->finish(Status::kDeadlineExpired, "deadline expired before execute",
                      info);
    } else {
      live.push_back(std::move(pending));
    }
  }
  if (live.empty()) return;

  const std::uint64_t dispatched_ns = obs::now_ns();
  for (auto& pending : live) {
    pending->trace.dispatched_ns = dispatched_ns;
    pending->trace.batch_size = live.size();
  }
  dispatched_.fetch_add(live.size(), std::memory_order_relaxed);
  batches_.fetch_add(1, std::memory_order_relaxed);
  if (live.size() > 1) {
    coalesced_requests_.fetch_add(live.size(), std::memory_order_relaxed);
  }
  bump_max(peak_batch_, live.size());
  IR_COUNTER_ADD("service.batches", 1);
  IR_COUNTER_ADD("service.dispatched", live.size());
  IR_HISTOGRAM("service.batch_size", live.size());
  IR_SPAN("service.batch");
  execute_batch_(std::move(live), pool);
}

void ServerCore::dispatch_loop(std::size_t index) {
  IR_SET_THREAD_NAME("service-dispatch-" + std::to_string(index));
  parallel::ThreadPool* pool = pools_.empty() ? nullptr : pools_[index].get();
  support::UniqueLock lock(mutex_);
  for (;;) {
    while (!stopping_ && queue_.empty()) work_available_.wait(lock);
    if (queue_.empty()) {
      if (stopping_) return;
      continue;
    }
    auto group = claim_group_locked();
    in_flight_ += group.size();
    lock.unlock();
    const std::size_t count = group.size();
    run_batch(std::move(group), pool);
    lock.lock();
    in_flight_ -= count;
    if (queue_.empty() && in_flight_ == 0) idle_.notify_all();
  }
}

}  // namespace detail

}  // namespace ir::service
