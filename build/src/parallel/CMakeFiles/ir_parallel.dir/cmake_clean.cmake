file(REMOVE_RECURSE
  "CMakeFiles/ir_parallel.dir/parallel_for.cpp.o"
  "CMakeFiles/ir_parallel.dir/parallel_for.cpp.o.d"
  "CMakeFiles/ir_parallel.dir/spmd.cpp.o"
  "CMakeFiles/ir_parallel.dir/spmd.cpp.o.d"
  "CMakeFiles/ir_parallel.dir/thread_pool.cpp.o"
  "CMakeFiles/ir_parallel.dir/thread_pool.cpp.o.d"
  "libir_parallel.a"
  "libir_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
