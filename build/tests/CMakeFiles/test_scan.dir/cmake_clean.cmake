file(REMOVE_RECURSE
  "CMakeFiles/test_scan.dir/scan/linear_recurrence_test.cpp.o"
  "CMakeFiles/test_scan.dir/scan/linear_recurrence_test.cpp.o.d"
  "CMakeFiles/test_scan.dir/scan/prefix_scan_test.cpp.o"
  "CMakeFiles/test_scan.dir/scan/prefix_scan_test.cpp.o.d"
  "CMakeFiles/test_scan.dir/scan/second_order_test.cpp.o"
  "CMakeFiles/test_scan.dir/scan/second_order_test.cpp.o.d"
  "CMakeFiles/test_scan.dir/scan/segmented_scan_test.cpp.o"
  "CMakeFiles/test_scan.dir/scan/segmented_scan_test.cpp.o.d"
  "test_scan"
  "test_scan.pdb"
  "test_scan[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
