// First-order linear recurrence solvers — the classic case IR generalizes.
//
//     x[i] = a[i] * x[i-1] + b[i],   i = 1..n,  x[0] given.
//
// The standard parallel solution (Kogge & Stone 1973, the paper's reference
// [4]) scans over the affine coefficient pairs: composing (a2,b2)∘(a1,b1) =
// (a2·a1, a2·b1 + b2) is associative, so a parallel prefix over pairs yields
// every x[i] in O(log n) rounds.  The IR library reproduces the same answers
// through the Möbius route (LinearIr with f(i) = i-1, g(i) = i), and the
// tridiagonal-style benches compare the two.
#pragma once

#include <span>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace ir::scan {

/// Affine map u -> coeff·u + offset; the scan element.
struct AffinePair {
  double coeff = 1.0;
  double offset = 0.0;
};

/// Sequential reference: returns x[1..n] (vector index k holds x[k+1]).
std::vector<double> linear_recurrence_sequential(std::span<const double> a,
                                                 std::span<const double> b, double x0);

/// Kogge-Stone pair-scan solution; identical output contract.
/// Pass a pool to run rounds in parallel.
std::vector<double> linear_recurrence_scan(std::span<const double> a,
                                           std::span<const double> b, double x0,
                                           parallel::ThreadPool* pool = nullptr);

}  // namespace ir::scan
