// Lowering: loop-nest programs -> flat IR equation systems.
//
// Enumerates the nest in sequential execution order (outer loops slow),
// evaluates every affine subscript, assigns each declared array a contiguous
// block of the flat cell space, and emits one IR equation per executed
// statement.  The result is exactly the paper's "set of IR equations" whose
// parallel solution parallelizes the original loop; feed it to
// core::classify / core::analyze / core::solve.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/ir_problem.hpp"
#include "frontend/loop_program.hpp"

namespace ir::frontend {

/// Result of lowering a LoopProgram.
struct LoweredProgram {
  core::GeneralIrSystem system;

  /// Flat base offset of each declared array within [0, system.cells).
  std::vector<std::size_t> array_base;

  /// equation -> index of the body statement that produced it.
  std::vector<std::size_t> equation_statement;

  /// Loop-variable values of each equation, equation-major (row e holds
  /// loops.size() values, nest order) — diagnostics, tests and the
  /// dependence-preservation checker; empty when lowering was asked not to
  /// record them.
  std::vector<std::int64_t> equation_vars;
  std::size_t vars_per_equation = 0;

  /// Loop-variable names in nest order — lets equation identities be matched
  /// across transformed programs whose nest order differs.
  std::vector<std::string> var_names;

  /// Flat cell id of array `a` at the (already evaluated) indices.
  [[nodiscard]] std::size_t flat_cell(const LoopProgram& program, std::size_t array,
                                      std::span<const std::int64_t> indices) const;
};

/// Options for lowering.
struct LowerOptions {
  /// Refuse to lower programs with more executed statements than this
  /// (protects against accidentally huge nests).
  std::size_t max_equations = 50'000'000;

  /// Record per-equation loop-variable values (costs memory; on by default
  /// for diagnosability).
  bool record_vars = true;
};

/// Lower `program` (validated first).  Subscripts that leave their declared
/// extents throw ContractViolation naming the reference and the loop-variable
/// values at the faulting iteration.
[[nodiscard]] LoweredProgram lower(const LoopProgram& program,
                                   const LowerOptions& options = {});

}  // namespace ir::frontend
