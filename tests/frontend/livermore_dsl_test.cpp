// The Livermore kernels' recurrence-carrying loops written in the DSL, then
// classified through parse -> lower -> classify — tying the frontend to the
// paper's Section-1 analysis.  (Data-dependent kernels cannot be written in
// the affine DSL at all, which is itself the point of the IR frame's
// restriction on f, g, h.)
#include <gtest/gtest.h>

#include "core/classify.hpp"
#include "frontend/lower.hpp"
#include "frontend/parser.hpp"

namespace ir::frontend {
namespace {

core::LoopClass classify_dsl(const char* source) {
  return core::classify(lower(parse_program(source)).system);
}

TEST(LivermoreDslTest, Kernel1HydroIsStreaming) {
  EXPECT_EQ(classify_dsl(R"(
array X[1001]
array Y[1001]
array Z[1012]
for k = 0 .. 1000 {
  X[k] = Y[k] . Z[k+10]
}
)"),
            core::LoopClass::kNoRecurrence);
}

TEST(LivermoreDslTest, Kernel5TridiagonalIsLinear) {
  EXPECT_EQ(classify_dsl(R"(
array X[1001]
for i = 1 .. 1000 {
  X[i] = X[i-1] . X[i]
}
)"),
            core::LoopClass::kLinearRecurrence);
}

TEST(LivermoreDslTest, Kernel6DenseRecurrenceIsGeneral) {
  EXPECT_EQ(classify_dsl(R"(
array W[101]
for i = 1 .. 100 {
  for k = 0 .. i - 1 {
    W[i] = W[i - k - 1] . W[i]
  }
}
)"),
            core::LoopClass::kGeneralIndexed);
}

TEST(LivermoreDslTest, Kernel11FirstSumIsLinear) {
  EXPECT_EQ(classify_dsl(R"(
array X[1001]
array Y[1001]
for k = 1 .. 1000 {
  X[k] = X[k-1] . Y[k]
}
)"),
            core::LoopClass::kLinearRecurrence);
}

TEST(LivermoreDslTest, Kernel12FirstDifferenceIsStreaming) {
  EXPECT_EQ(classify_dsl(R"(
array X[1001]
array Y[1002]
for k = 0 .. 1000 {
  X[k] = Y[k+1] . Y[k]
}
)"),
            core::LoopClass::kNoRecurrence);
}

TEST(LivermoreDslTest, Kernel23FullIsGeneralFragmentIsChains) {
  // Full: both the row (j-1) and column (k-1) reads carry dependences.
  EXPECT_EQ(classify_dsl(R"(
array X[103][7]
for k = 1 .. 100 {
  for j = 1 .. 5 {
    X[k][j] = X[k][j-1] . X[k-1][j]
  }
}
)"),
            core::LoopClass::kGeneralIndexed);
  // Paper's fragment: only the column dependence — per-column chains.
  EXPECT_EQ(classify_dsl(R"(
array X[103][7]
for j = 1 .. 6 {
  for k = 1 .. 100 {
    X[k][j] = X[k-1][j] . X[k][j]
  }
}
)"),
            core::LoopClass::kLinearRecurrence);
}

TEST(LivermoreDslTest, InterchangedFragmentBecomesOrdinaryIndexed) {
  // Same fragment with the loops interchanged (k outer): the column chains
  // are now interleaved, so dependences are no longer "previous iteration" —
  // the ordinary indexed class, exactly what the paper's Section-2 machinery
  // exists for.
  EXPECT_EQ(classify_dsl(R"(
array X[103][7]
for k = 1 .. 100 {
  for j = 1 .. 6 {
    X[k][j] = X[k-1][j] . X[k][j]
  }
}
)"),
            core::LoopClass::kOrdinaryIndexed);
}

TEST(LivermoreDslTest, FibonacciStyleIsGeneral) {
  EXPECT_EQ(classify_dsl(R"(
array A[64]
for i = 2 .. 63 {
  A[i] = A[i-1] . A[i-2]
}
)"),
            core::LoopClass::kGeneralIndexed);
}

TEST(LivermoreDslTest, ReductionIsLinear) {
  // Kernel 3 (inner product): the accumulator as a 1-cell array.
  EXPECT_EQ(classify_dsl(R"(
array Q[1]
array ZX[1001]
for k = 0 .. 1000 {
  Q[0] = ZX[k] . Q[0]
}
)"),
            core::LoopClass::kLinearRecurrence);
}

}  // namespace
}  // namespace ir::frontend
