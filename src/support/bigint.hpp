// Arbitrary-precision unsigned integer.
//
// CAP (counting-all-paths) edge labels and GIR evaluation exponents grow like
// Fibonacci numbers — Θ(φⁿ) — so 64-bit counters overflow around n ≈ 90.  The
// paper treats "power" as an atomic operation precisely because exponents get
// this large; BigUint is the exponent carrier that makes that assumption
// implementable.
//
// Representation: little-endian vector of 32-bit limbs, no leading zero limb
// (zero is the empty vector).  Schoolbook multiplication with a Karatsuba
// path for large operands.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ir::support {

/// Arbitrary-precision unsigned integer (value type, deep copies).
class BigUint {
 public:
  /// Zero.
  BigUint() = default;

  /// From a built-in unsigned value.
  BigUint(std::uint64_t v);  // NOLINT(google-explicit-constructor): numeric literal ergonomics

  /// Parse a decimal string (digits only, no sign).  Throws ContractViolation
  /// on empty input or non-digit characters.
  static BigUint from_decimal(std::string_view text);

  /// True iff the value is zero.
  [[nodiscard]] bool is_zero() const noexcept { return limbs_.empty(); }

  /// True iff the value fits in an unsigned 64-bit integer.
  [[nodiscard]] bool fits_u64() const noexcept { return limbs_.size() <= 2; }

  /// Convert to uint64_t.  Throws ContractViolation if !fits_u64().
  [[nodiscard]] std::uint64_t to_u64() const;

  /// Number of significant bits (0 for zero).
  [[nodiscard]] std::size_t bit_length() const noexcept;

  /// Value of bit `i` (false beyond bit_length()).
  [[nodiscard]] bool bit(std::size_t i) const noexcept;

  /// Decimal rendering.
  [[nodiscard]] std::string to_string() const;

  /// Approximate conversion to double (may lose precision; +inf on overflow).
  [[nodiscard]] double to_double() const noexcept;

  BigUint& operator+=(const BigUint& rhs);
  BigUint& operator-=(const BigUint& rhs);  ///< Throws ContractViolation if rhs > *this.
  BigUint& operator*=(const BigUint& rhs);
  BigUint& operator<<=(std::size_t bits);
  BigUint& operator>>=(std::size_t bits);

  friend BigUint operator+(BigUint a, const BigUint& b) { return a += b; }
  friend BigUint operator-(BigUint a, const BigUint& b) { return a -= b; }
  friend BigUint operator*(const BigUint& a, const BigUint& b);
  friend BigUint operator<<(BigUint a, std::size_t bits) { return a <<= bits; }
  friend BigUint operator>>(BigUint a, std::size_t bits) { return a >>= bits; }

  /// Divide by a 32-bit divisor; returns quotient, sets `remainder`.
  /// Throws ContractViolation on division by zero.
  [[nodiscard]] BigUint div_u32(std::uint32_t divisor, std::uint32_t& remainder) const;

  friend std::strong_ordering operator<=>(const BigUint& a, const BigUint& b) noexcept;
  friend bool operator==(const BigUint& a, const BigUint& b) noexcept = default;

  /// a^e via binary exponentiation (e is a built-in; BigUint exponents of
  /// BigUint bases would be astronomically large).
  [[nodiscard]] static BigUint pow(const BigUint& base, std::uint64_t exponent);

  /// Access to the limb vector (little endian, for tests and hashing).
  [[nodiscard]] const std::vector<std::uint32_t>& limbs() const noexcept { return limbs_; }

  /// From a little-endian limb range in the canonical representation (no
  /// trailing zero limb; empty = 0).  Throws ContractViolation on a
  /// non-canonical range — the plan-file loader uses this to reject
  /// tampered exponent pools instead of aliasing distinct byte encodings
  /// of one value.
  [[nodiscard]] static BigUint from_limbs(const std::uint32_t* limbs, std::size_t count);

 private:
  void trim() noexcept;
  static BigUint mul_schoolbook(const BigUint& a, const BigUint& b);
  static BigUint mul_karatsuba(const BigUint& a, const BigUint& b);
  [[nodiscard]] BigUint slice_limbs(std::size_t from, std::size_t count) const;

  std::vector<std::uint32_t> limbs_;  // little endian; empty == 0
};

/// Convenience stream-style rendering.
std::string to_string(const BigUint& v);

}  // namespace ir::support
