// EX-L23 — the paper's Section-3 worked example: Livermore loop 23's
// fragment parallelized through the Möbius transformation.
//
// Reports, for growing problem sizes: sequential wall time, Möbius-IR wall
// time (threaded), max element error (reassociation only), and the
// pointer-jumping round count — the paper's O(log n) claim made measurable.
#include <cmath>
#include <cstdio>

#include "core/linear_ir.hpp"
#include "livermore/kernels.hpp"
#include "livermore/parallel.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

int main() {
  using namespace ir;

  std::printf("EX-L23: loop 23 fragment via the Moebius route\n");
  std::printf("X[k,j] := X[k,j] + 0.175*(Y[k] + X[k-1,j]*Z[k,j])\n\n");

  parallel::ThreadPool pool(parallel::ThreadPool::default_threads());

  support::TextTable table;
  table.set_header(
      {"rows", "seq ms", "IR ms", "segscan ms", "rounds", "max err", "match"});

  for (std::size_t scale : {1u, 4u, 16u, 64u}) {
    auto seq = livermore::Workspace::standard(1997);
    auto par = livermore::Workspace::standard(1997);
    // Grow the grid by replicating rows.
    const std::size_t kn = 101 * scale;
    seq.loop_2d = kn;
    par.loop_2d = kn;
    seq.za = livermore::Grid(kn + 2, 7, 0.4);
    par.za = seq.za;
    seq.zz = livermore::Grid(kn + 2, 7, 0.5);
    par.zz = seq.zz;
    seq.y.resize(kn + 2, 0.3);
    par.y = seq.y;
    auto seg = seq;

    support::Stopwatch watch;
    livermore::kernel23_paper_fragment(seq);
    const double seq_ms = watch.lap() * 1e3;

    core::OrdinaryIrStats stats;
    core::OrdinaryIrOptions options;
    options.pool = &pool;
    options.stats = &stats;
    livermore::kernel23_fragment_parallel(par, options);
    const double par_ms = watch.lap() * 1e3;

    livermore::kernel23_fragment_segmented(seg, &pool);
    const double seg_ms = watch.lap() * 1e3;

    double max_err = 0.0;
    for (std::size_t i = 0; i < seq.za.data().size(); ++i) {
      max_err = std::max(max_err, std::fabs(seq.za.data()[i] - par.za.data()[i]));
      max_err = std::max(max_err, std::fabs(seq.za.data()[i] - seg.za.data()[i]));
    }
    table.add_row({std::to_string(kn), support::fmt_f(seq_ms, 3),
                   support::fmt_f(par_ms, 3), support::fmt_f(seg_ms, 3),
                   std::to_string(stats.rounds), support::fmt_g(max_err, 2),
                   max_err < 1e-6 ? "yes" : "NO"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("rounds grow as log(rows): the paper's 'calculated in O(log n) steps'\n");
  return 0;
}
