// Parser for the loop DSL.
//
// A tiny concrete syntax so IR-shaped loops can be written down, stored and
// fed to the lowering pipeline (examples/loop_frontend, tests):
//
//     # Livermore 23 fragment (paper Section 3)
//     array X[103][7]
//     array Y[103]
//     array Z[103][7]
//     for j = 1 .. 6 {
//       for k = 1 .. 100 {
//         X[k][j] = Y[k] . X[k][j]
//       }
//     }
//
// Rules: `array NAME[extent]...` declarations first; then one perfect loop
// nest (`for var = lo .. hi { ... }`, bounds affine in outer variables);
// innermost body is one or more statements `ref = ref . ref` where `.` is
// the abstract associative operator; subscripts are affine expressions over
// the loop variables (`2*k + j - 1`).  `#` starts a comment.  Statements may
// optionally end with `;`.
#pragma once

#include <string_view>

#include "frontend/loop_program.hpp"

namespace ir::frontend {

/// Parse a DSL document.  Throws ContractViolation with line/column info on
/// syntax errors; the returned program is validate()d.
[[nodiscard]] LoopProgram parse_program(std::string_view source);

}  // namespace ir::frontend
