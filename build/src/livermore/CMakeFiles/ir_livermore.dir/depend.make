# Empty dependencies file for ir_livermore.
# This may be replaced when dependencies are built.
