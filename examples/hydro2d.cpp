// The paper's Section-3 worked example: Livermore loop 23 (2-D implicit
// hydrodynamics) parallelized through the Möbius transformation — "without
// using any data dependence analysis techniques".
//
//   $ ./hydro2d
#include <cmath>
#include <cstdio>

#include "livermore/kernels.hpp"
#include "livermore/parallel.hpp"
#include "parallel/thread_pool.hpp"
#include "support/timer.hpp"

int main() {
  using namespace ir;

  std::printf("Livermore loop 23 fragment (paper Section 3):\n");
  std::printf("  for j = 1..6: for k = 1..n:\n");
  std::printf("    X[k,j] := X[k,j] + 0.175*(Y[k] + X[k-1,j]*Z[k,j])\n\n");

  auto sequential_ws = livermore::Workspace::standard(1997);
  auto parallel_ws = livermore::Workspace::standard(1997);

  support::Stopwatch watch;
  const double seq_checksum = livermore::kernel23_paper_fragment(sequential_ws);
  const double seq_ms = watch.lap() * 1e3;

  parallel::ThreadPool pool(parallel::ThreadPool::default_threads());
  core::OrdinaryIrOptions options;
  options.pool = &pool;
  watch.lap();  // pool construction is not part of the solver's time
  const double par_checksum = livermore::kernel23_fragment_parallel(parallel_ws, options);
  const double par_ms = watch.lap() * 1e3;

  double max_error = 0.0;
  for (std::size_t i = 0; i < sequential_ws.za.data().size(); ++i) {
    max_error = std::max(max_error, std::fabs(sequential_ws.za.data()[i] -
                                              parallel_ws.za.data()[i]));
  }

  std::printf("sequential checksum: %.12f  (%.3f ms)\n", seq_checksum, seq_ms);
  std::printf("parallel   checksum: %.12f  (%.3f ms, %zu threads)\n", par_checksum,
              par_ms, pool.size());
  std::printf("max |element difference| = %.3g  (floating-point reassociation only)\n\n",
              max_error);

  // The full kernel 23 (four-operand relaxation) for contrast: its traces
  // are trees, so it needs the GIR machinery, not the Möbius route.
  auto full = livermore::Workspace::standard(1997);
  const double full_checksum = livermore::kernel23_implicit_hydro(full);
  std::printf("full kernel 23 (general indexed recurrence) checksum: %.12f\n",
              full_checksum);
  std::printf("see EXPERIMENTS.md [EX-L23] for the classification of both forms\n");
  return max_error < 1e-6 ? 0 : 1;
}
