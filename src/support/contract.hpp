// Lightweight contract checking used across the library.
//
// The library is a loop-parallelization engine: almost every entry point has
// structural preconditions (index maps in range, injectivity, operator
// properties).  Violations are programming errors on the caller's side, so we
// throw rather than abort — callers embedding the library in a compiler pass
// want to surface a diagnostic, not kill the process.
#pragma once

#include <stdexcept>
#include <string>

namespace ir::support {

/// Thrown when an argument violates a documented precondition.
class ContractViolation : public std::invalid_argument {
 public:
  explicit ContractViolation(const std::string& what) : std::invalid_argument(what) {}
};

/// Thrown when an internal invariant fails (a library bug, not a caller bug).
class InternalError : public std::logic_error {
 public:
  explicit InternalError(const std::string& what) : std::logic_error(what) {}
};

[[noreturn]] inline void contract_fail(const char* expr, const char* file, int line,
                                       const std::string& msg) {
  throw ContractViolation(std::string(file) + ":" + std::to_string(line) +
                          ": requirement (" + expr + ") failed" +
                          (msg.empty() ? "" : ": " + msg));
}

[[noreturn]] inline void invariant_fail(const char* expr, const char* file, int line,
                                        const std::string& msg) {
  throw InternalError(std::string(file) + ":" + std::to_string(line) + ": invariant (" +
                      expr + ") failed" + (msg.empty() ? "" : ": " + msg));
}

}  // namespace ir::support

/// Precondition check: throws ir::support::ContractViolation with location info.
#define IR_REQUIRE(expr, msg)                                              \
  do {                                                                     \
    if (!(expr)) ::ir::support::contract_fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

/// Internal invariant check: throws ir::support::InternalError.
#define IR_INVARIANT(expr, msg)                                             \
  do {                                                                      \
    if (!(expr)) ::ir::support::invariant_fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)
