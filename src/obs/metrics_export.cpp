#include "obs/metrics_export.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "support/contract.hpp"

namespace ir::obs {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_quote(const std::string& text) { return "\"" + json_escape(text) + "\""; }

void write_metrics_json(std::ostream& out, const MetricsSnapshot& snapshot,
                        const ExtraFields& extra) {
  const auto emit_map = [&out](const std::map<std::string, std::uint64_t>& values) {
    bool first = true;
    for (const auto& [name, value] : values) {
      if (!first) out << ",";
      first = false;
      out << "\n    " << json_quote(name) << ": " << value;
    }
  };

  out << "{\n  \"counters\": {";
  emit_map(snapshot.counters);
  out << "\n  },\n  \"gauges\": {";
  emit_map(snapshot.gauges);
  out << "\n  },\n  \"histograms\": {";
  {
    bool first = true;
    for (const auto& [name, histogram] : snapshot.histograms) {
      if (!first) out << ",";
      first = false;
      out << "\n    " << json_quote(name) << ": {\"count\": " << histogram.count()
          << ", \"buckets\": [";
      // Trailing zero buckets carry no information and the log-linear layout
      // has 496 of them — emit up to the last occupied bucket only.
      std::size_t last = 0;
      for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
        if (histogram.buckets[b] != 0) last = b + 1;
      }
      for (std::size_t b = 0; b < last; ++b) {
        if (b != 0) out << ", ";
        out << histogram.buckets[b];
      }
      out << "], \"sum\": " << histogram.sum << "}";
    }
  }
  out << "\n  },\n  \"extra\": {";
  {
    bool first = true;
    for (const auto& [key, raw_value] : extra) {
      if (!first) out << ",";
      first = false;
      out << "\n    " << json_quote(key) << ": " << raw_value;
    }
  }
  out << "\n  }\n}\n";
}

std::string metrics_json(const MetricsSnapshot& snapshot, const ExtraFields& extra) {
  std::ostringstream out;
  write_metrics_json(out, snapshot, extra);
  return out.str();
}

void write_metrics_file(const std::string& path, const ExtraFields& extra) {
  std::ofstream out(path);
  IR_REQUIRE(out.good(), "cannot open metrics output file '" + path + "'");
  write_metrics_json(out, registry().snapshot(), extra);
}

}  // namespace ir::obs
