// Binary plan format + on-disk plan store (docs/plan_store.md).
//
// Compiled plans are pure functions of (system content, routing options), so
// they are durable artifacts: compile once, persist, and every later process
// — an irserve restart, a future shard fleet sharing one read-only store —
// replays the schedule without paying analysis or schedule construction
// again.  The format is designed around the fact that every schedule table
// is already a flat array (uint32 indices, size_t offsets, uint8 flags):
//
//   * versioned + endianness-tagged header with per-section offset/length
//     table and a whole-file checksum;
//   * every section 8-byte aligned, so a loaded Plan BORROWS its tables
//     straight out of the mapping (PlanTable's borrowing state — zero copy,
//     no deserialization of table payloads).  The one exception is the GIR
//     exponent table, whose arbitrary-precision values are materialized
//     from the file's limb pool;
//   * the source system is embedded as its canonical ir-system v1 text, so
//     a plan file is self-contained: the loader re-derives the fingerprint
//     and the SystemReport and can run the full static verifier against it.
//
// Trust model: plan files are data, not code, and are treated as untrusted.
// Loading validates the header, the checksum, and every section bound
// before touching a table, then runs verify_plan() (precondition lint +
// PRAM hazard analysis) against the embedded system.  A corrupt, truncated,
// or tampered file is rejected with a reason — never executed.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/plan.hpp"
#include "core/plan_cache.hpp"
#include "support/thread_annotations.hpp"

namespace ir::core {

/// Bumped on any layout change; readers reject other versions (the format
/// is an artifact cache, not an archival interchange format — recompiling
/// is always safe, so there is no cross-version migration).
inline constexpr std::uint32_t kPlanFormatVersion = 2;

/// File extension the store uses for its entries.
inline constexpr const char* kPlanFileExtension = ".irplan";

/// Load-time policy.  Structural validation (header, bounds, checksum,
/// fingerprint) always runs; `verify` additionally runs the static verifier
/// (lint + hazard families) against the embedded system before the plan is
/// released to callers.  Turning it off is for benchmarking the raw load
/// path only.
struct PlanLoadOptions {
  bool verify = true;
};

/// A plan loaded from the binary format.  `plan->backing` owns the mapping
/// (or buffer) the schedule tables point into; the system is parsed from
/// the embedded canonical text (it is what verify ran against).  The cache
/// identity is NOT taken on faith from the header: the loader re-derives
/// store_key/check from the embedded system plus the recorded key words and
/// rejects the file when the header disagrees, so a spliced file (one
/// system's plan under another's identity) can never be served.
struct LoadedPlan {
  std::shared_ptr<const Plan> plan;
  GeneralIrSystem system;
  std::uint64_t store_key = 0;  ///< plan_cache_key, validated against `system`
  PlanKeyCheck check;           ///< collision double-check, validated likewise
  PlanKeyWords key_words;       ///< the option words the identity derives from
};

/// Serialize `plan` (+ its source system and cache identity) to the binary
/// plan format.  `key_words` is plan_key_words(system, options) of the pair
/// the plan was compiled from; the store key and check are derived from it
/// and the system *inside* this function, so a file's recorded identity is
/// consistent with its payload by construction.
[[nodiscard]] std::string serialize_plan(const Plan& plan, const GeneralIrSystem& sys,
                                         const PlanKeyWords& key_words);

/// Validate + load a plan from an in-memory buffer, zero-copy: the returned
/// plan's tables alias `bytes`' storage, kept alive via Plan::backing.
/// Throws support::ContractViolation with a reason on any defect.
[[nodiscard]] LoadedPlan load_plan(std::shared_ptr<const std::string> bytes,
                                   const PlanLoadOptions& options = {});

/// mmap `path` read-only and load zero-copy (the mapping lives as long as
/// the returned plan).  Throws support::ContractViolation on I/O errors and
/// every defect load_plan rejects.
[[nodiscard]] LoadedPlan load_plan_file(const std::string& path,
                                        const PlanLoadOptions& options = {});

/// Header facts of a plan file (checksum verified, tables untouched) — the
/// `irtool plan info` view.
struct PlanFileInfo {
  std::uint32_t version = 0;
  PlanEngine engine = PlanEngine::kJumping;
  bool chain = false;
  std::uint64_t fingerprint = 0;
  std::uint64_t store_key = 0;
  PlanKeyCheck check;
  std::uint64_t cells = 0;
  std::uint64_t iterations = 0;
  std::uint64_t file_bytes = 0;
  std::uint64_t checksum = 0;

  struct Section {
    const char* name;
    std::uint64_t offset;
    std::uint64_t bytes;
  };
  std::vector<Section> sections;  ///< non-empty sections, file order
};

[[nodiscard]] PlanFileInfo plan_file_info(const std::string& path);

/// On-disk plan store: a flat directory of `plan-<key>.irplan` files keyed
/// by plan_cache_key.  put() is atomic (tmp + rename into place), get()
/// loads + verifies and applies the same PlanKeyCheck double-check as the
/// in-memory PlanCache, manifest() enumerates entries from their headers
/// without loading tables.  Safe for concurrent readers and writers across
/// processes: rename is the commit point, and a reader only ever sees a
/// complete file or none.
///
/// Counters are exposed as accessors and as plan_store.* metrics
/// (docs/observability.md).  get() never throws for a bad entry: an absent
/// key is a miss, an unreadable/corrupt/unverifiable file is a reject —
/// both return null and the caller compiles instead.
class PlanStore {
 public:
  explicit PlanStore(std::string dir);

  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }

  /// Path a key's entry lives at (whether or not it exists yet).
  [[nodiscard]] std::string entry_path(std::uint64_t key) const;

  /// Persist a compiled plan under the key derived from (`sys`,
  /// `key_words`); returns the final path.  Throws
  /// support::ContractViolation on I/O failure.
  std::string put(const PlanKeyWords& key_words, const Plan& plan,
                  const GeneralIrSystem& sys);

  /// Load + verify the entry for `key`; null when absent (miss) or when the
  /// file fails validation/verification or its recorded identity disagrees
  /// with `check` (reject).
  [[nodiscard]] std::shared_ptr<const Plan> get(std::uint64_t key,
                                                const PlanKeyCheck& check);

  struct ManifestEntry {
    std::string path;
    std::uint64_t store_key = 0;
    std::uint64_t fingerprint = 0;
    PlanEngine engine = PlanEngine::kJumping;
    std::uint64_t cells = 0;
    std::uint64_t iterations = 0;
    std::uint64_t file_bytes = 0;
  };

  /// Header-validated directory scan (unreadable/corrupt files are counted
  /// as rejects and skipped).
  [[nodiscard]] std::vector<ManifestEntry> manifest() const;

  /// Warm-start: load + verify every manifest entry and insert it into
  /// `cache` under its recorded key/check.  Returns the number of plans
  /// preloaded; failures count as rejects and are skipped.
  std::size_t preload(PlanCache& cache);

  [[nodiscard]] std::uint64_t hits() const IR_EXCLUDES(mutex_);
  [[nodiscard]] std::uint64_t misses() const IR_EXCLUDES(mutex_);
  [[nodiscard]] std::uint64_t rejects() const IR_EXCLUDES(mutex_);
  [[nodiscard]] std::uint64_t puts() const IR_EXCLUDES(mutex_);
  [[nodiscard]] std::uint64_t preloaded() const IR_EXCLUDES(mutex_);

 private:
  void note_reject() const IR_EXCLUDES(mutex_);

  std::string dir_;
  mutable support::Mutex mutex_;
  mutable std::uint64_t hits_ IR_GUARDED_BY(mutex_) = 0;
  mutable std::uint64_t misses_ IR_GUARDED_BY(mutex_) = 0;
  mutable std::uint64_t rejects_ IR_GUARDED_BY(mutex_) = 0;
  mutable std::uint64_t puts_ IR_GUARDED_BY(mutex_) = 0;
  mutable std::uint64_t preloaded_ IR_GUARDED_BY(mutex_) = 0;
};

}  // namespace ir::core
