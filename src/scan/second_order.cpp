#include "scan/second_order.hpp"

#include <array>

#include "algebra/concepts.hpp"
#include "scan/prefix_scan.hpp"
#include "support/contract.hpp"

namespace ir::scan {

namespace {

/// Row-major 3x3 matrix product monoid, composed so that
/// combine(earlier, later) = later · earlier (apply earlier first).
struct Mat3Compose {
  using Value = std::array<double, 9>;
  static constexpr bool is_commutative = false;

  Value combine(const Value& earlier, const Value& later) const {
    Value out{};
    for (int r = 0; r < 3; ++r) {
      for (int col = 0; col < 3; ++col) {
        double sum = 0.0;
        for (int k = 0; k < 3; ++k) sum += later[r * 3 + k] * earlier[k * 3 + col];
        out[r * 3 + col] = sum;
      }
    }
    return out;
  }
};

static_assert(algebra::BinaryOperation<Mat3Compose>);

void check_sizes(std::span<const double> a, std::span<const double> b,
                 std::span<const double> c) {
  IR_REQUIRE(a.size() == b.size() && b.size() == c.size(),
             "coefficient arrays must have equal length");
}

}  // namespace

std::vector<double> second_order_recurrence_sequential(std::span<const double> a,
                                                       std::span<const double> b,
                                                       std::span<const double> c,
                                                       double x_minus1, double x_minus2) {
  check_sizes(a, b, c);
  std::vector<double> x(a.size());
  double prev1 = x_minus1, prev2 = x_minus2;
  for (std::size_t i = 0; i < a.size(); ++i) {
    x[i] = a[i] * prev1 + b[i] * prev2 + c[i];
    prev2 = prev1;
    prev1 = x[i];
  }
  return x;
}

std::vector<double> second_order_recurrence_scan(std::span<const double> a,
                                                 std::span<const double> b,
                                                 std::span<const double> c,
                                                 double x_minus1, double x_minus2,
                                                 parallel::ThreadPool* pool) {
  check_sizes(a, b, c);
  std::vector<Mat3Compose::Value> steps(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    steps[i] = {a[i], b[i], c[i],  //
                1.0,  0.0, 0.0,    //
                0.0,  0.0, 1.0};
  }
  inclusive_scan_kogge_stone(Mat3Compose{}, steps, pool);
  std::vector<double> x(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto& m = steps[i];
    x[i] = m[0] * x_minus1 + m[1] * x_minus2 + m[2];
  }
  return x;
}

}  // namespace ir::scan
