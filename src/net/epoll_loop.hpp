// Single-threaded epoll event loop (docs/http.md).
//
// One thread owns the loop: it calls run(), and from then on every fd
// callback, posted job, and tick callback executes on that thread.  Other
// threads interact with the loop in exactly two ways — post(), which enqueues
// a job and wakes the loop through an eventfd, and stop(), which is post() of
// a poison flag — so the fd callback table needs no lock at all.  This is the
// standard reactor shape: cross-thread work is marshalled *onto* the loop
// thread instead of the loop's state being shared *across* threads.
//
// add_fd/modify_fd/remove_fd must be called on the loop thread (or before
// run() starts); HttpServer keeps that contract by routing all cross-thread
// mutations through post().
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "support/thread_annotations.hpp"

namespace ir::net {

class EventLoop {
 public:
  /// Invoked on the loop thread with the epoll event mask for the fd.
  using FdCallback = std::function<void(std::uint32_t events)>;
  using TickCallback = std::function<void()>;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// True when the epoll + eventfd pair came up; a false loop can only fail
  /// fast.
  [[nodiscard]] bool valid() const noexcept { return epoll_fd_ >= 0 && wake_fd_ >= 0; }

  /// Register `fd` for `events` (EPOLLIN / EPOLLOUT / ...).  Loop thread only.
  bool add_fd(int fd, std::uint32_t events, FdCallback callback);
  /// Change the armed event mask for a registered fd.  Loop thread only.
  bool modify_fd(int fd, std::uint32_t events);
  /// Unregister; the fd is not closed (the owner closes it).  Safe to call
  /// from inside the fd's own callback.  Loop thread only.
  void remove_fd(int fd);

  /// Enqueue `job` to run on the loop thread; wakes the loop.  Any thread.
  void post(std::function<void()> job) IR_EXCLUDES(mutex_);

  /// Run until stop(): wait for events, dispatch callbacks and posted jobs,
  /// and invoke `on_tick` at least every `tick` interval (timeout scanning).
  void run(std::chrono::milliseconds tick, const TickCallback& on_tick);

  /// Request run() to return after the current dispatch round.  Any thread.
  void stop();

 private:
  void drain_wake_fd() const;

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  bool stop_requested_ = false;  ///< loop thread only; set via posted job
  // shared_ptr so a callback that removes itself (or another fd) mid-dispatch
  // stays alive for the duration of its own invocation.
  std::unordered_map<int, std::shared_ptr<FdCallback>> callbacks_;

  support::Mutex mutex_;
  std::vector<std::function<void()>> posted_ IR_GUARDED_BY(mutex_);
};

}  // namespace ir::net
