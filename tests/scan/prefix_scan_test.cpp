#include "scan/prefix_scan.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "algebra/monoids.hpp"
#include "support/rng.hpp"

namespace ir::scan {
namespace {

using algebra::AddMonoid;
using algebra::ConcatMonoid;

std::vector<std::uint64_t> random_values(std::size_t n, std::uint64_t seed) {
  support::SplitMix64 rng(seed);
  std::vector<std::uint64_t> v(n);
  for (auto& e : v) e = rng.below(1000);
  return v;
}

TEST(SequentialScanTest, PrefixSums) {
  std::vector<std::uint64_t> v{1, 2, 3, 4};
  inclusive_scan_sequential(AddMonoid<std::uint64_t>{}, v);
  EXPECT_EQ(v, (std::vector<std::uint64_t>{1, 3, 6, 10}));
}

TEST(KoggeStoneTest, MatchesSequentialAcrossSizes) {
  for (std::size_t n : {0u, 1u, 2u, 3u, 7u, 8u, 63u, 64u, 65u, 1000u}) {
    auto expect = random_values(n, n + 1);
    auto actual = expect;
    inclusive_scan_sequential(AddMonoid<std::uint64_t>{}, expect);
    inclusive_scan_kogge_stone(AddMonoid<std::uint64_t>{}, actual);
    EXPECT_EQ(actual, expect) << "n=" << n;
  }
}

TEST(KoggeStoneTest, NonCommutativeOperatorOrderPreserved) {
  ConcatMonoid cat;
  std::vector<std::string> v{"a", "b", "c", "d", "e"};
  inclusive_scan_kogge_stone(cat, v);
  EXPECT_EQ(v.back(), "abcde");
  EXPECT_EQ(v[2], "abc");
}

TEST(KoggeStoneTest, ParallelPoolMatches) {
  parallel::ThreadPool pool(4);
  auto expect = random_values(777, 3);
  auto actual = expect;
  inclusive_scan_sequential(AddMonoid<std::uint64_t>{}, expect);
  inclusive_scan_kogge_stone(AddMonoid<std::uint64_t>{}, actual, &pool);
  EXPECT_EQ(actual, expect);
}

TEST(BlellochTest, ExclusiveScanMatchesShiftedInclusive) {
  for (std::size_t n : {1u, 2u, 5u, 8u, 33u, 128u, 500u}) {
    const auto values = random_values(n, n + 99);
    auto inclusive = values;
    inclusive_scan_sequential(AddMonoid<std::uint64_t>{}, inclusive);
    auto exclusive = values;
    exclusive_scan_blelloch(AddMonoid<std::uint64_t>{}, exclusive, 0ull);
    ASSERT_EQ(exclusive.size(), n);
    EXPECT_EQ(exclusive[0], 0u) << "n=" << n;
    for (std::size_t i = 1; i < n; ++i) {
      EXPECT_EQ(exclusive[i], inclusive[i - 1]) << "n=" << n << " i=" << i;
    }
  }
}

TEST(BlellochTest, ParallelPoolMatches) {
  parallel::ThreadPool pool(4);
  const auto values = random_values(300, 8);
  auto a = values, b = values;
  exclusive_scan_blelloch(AddMonoid<std::uint64_t>{}, a, 0ull);
  exclusive_scan_blelloch(AddMonoid<std::uint64_t>{}, b, 0ull, &pool);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace ir::scan
