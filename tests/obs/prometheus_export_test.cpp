// Prometheus text exposition: name sanitization, exposition shape for all
// three metric kinds, and the atomic file write.
#include "obs/prometheus_export.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/histogram.hpp"
#include "obs/registry.hpp"

namespace {

using namespace ir;

TEST(PrometheusExport, NameSanitization) {
  EXPECT_EQ(obs::prometheus_name("service.latency.total_us"),
            "ir_service_latency_total_us");
  EXPECT_EQ(obs::prometheus_name("already_clean_123"), "ir_already_clean_123");
  EXPECT_EQ(obs::prometheus_name("weird-chars:and spaces"),
            "ir_weird_chars_and_spaces");
}

// A hand-built snapshot keeps the expected text independent of whatever other
// tests recorded into the process-wide registry.
obs::MetricsSnapshot sample_snapshot() {
  obs::MetricsSnapshot snapshot;
  snapshot.counters["service.replied"] = 42;
  snapshot.gauges["service.queue_depth"] = 7;
  obs::MetricsSnapshot::Histogram histogram;
  for (int i = 0; i < 10; ++i) {
    histogram.buckets[obs::histogram_bucket_of(100)] += 1;
    histogram.sum += 100;
  }
  snapshot.histograms["service.latency.total_us"] = histogram;
  return snapshot;
}

TEST(PrometheusExport, CounterAndGaugeLines) {
  const std::string text = obs::prometheus_text(sample_snapshot());
  EXPECT_NE(text.find("# TYPE ir_service_replied counter\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("ir_service_replied 42\n"), std::string::npos) << text;
  EXPECT_NE(text.find("# TYPE ir_service_queue_depth gauge\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("ir_service_queue_depth 7\n"), std::string::npos) << text;
}

TEST(PrometheusExport, HistogramRendersAsSummary) {
  const std::string text = obs::prometheus_text(sample_snapshot());
  EXPECT_NE(text.find("# TYPE ir_service_latency_total_us summary"),
            std::string::npos)
      << text;
  // All four quantile labels present; every sample was 100, so the rendered
  // quantile must parse back within one bucket width of 100.
  for (const char* label : {"0.5", "0.9", "0.99", "0.999"}) {
    const std::string needle =
        std::string("ir_service_latency_total_us{quantile=\"") + label + "\"} ";
    const auto at = text.find(needle);
    ASSERT_NE(at, std::string::npos) << "missing " << needle << "\n" << text;
    const double value = std::stod(text.substr(at + needle.size()));
    EXPECT_NEAR(value, 100.0,
                obs::histogram_bucket_width(obs::histogram_bucket_of(100)) + 1)
        << label;
  }
  EXPECT_NE(text.find("ir_service_latency_total_us_sum 1000\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("ir_service_latency_total_us_count 10\n"),
            std::string::npos)
      << text;
}

TEST(PrometheusExport, EveryLineIsCommentOrSample) {
  // Grammar smoke: each non-empty line is a '#' comment or
  // "name[{labels}] value".
  std::istringstream text(obs::prometheus_text(sample_snapshot()));
  std::string line;
  while (std::getline(text, line)) {
    if (line.empty() || line[0] == '#') continue;
    const auto space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << "no value on line: " << line;
    EXPECT_NO_THROW((void)std::stod(line.substr(space + 1))) << line;
    const std::string name = line.substr(0, space);
    EXPECT_EQ(name.rfind("ir_", 0), 0u) << "unprefixed metric: " << line;
  }
}

TEST(PrometheusExport, FileWriteMatchesText) {
  const std::string path = ::testing::TempDir() + "prometheus_export_test.prom";
  const auto snapshot = sample_snapshot();
  obs::write_prometheus_file(path, snapshot);
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << path;
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str(), obs::prometheus_text(snapshot));
  std::remove(path.c_str());
}

}  // namespace
