#include "core/linear_ir.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "testing/random_systems.hpp"

namespace ir::core {
namespace {

using algebra::MoebiusMap;

/// Random coefficients with |mul| <= 0.95 keep long products conditioned.
LinearIrLoop random_linear_loop(std::size_t iterations, std::size_t cells,
                                support::SplitMix64& rng, double rewire = 0.8) {
  LinearIrLoop loop;
  loop.system = testing::random_ordinary_system(iterations, cells, rng, rewire);
  loop.mul.resize(iterations);
  loop.add.resize(iterations);
  for (std::size_t i = 0; i < iterations; ++i) {
    loop.mul[i] = rng.uniform(-0.95, 0.95);
    loop.add[i] = rng.uniform(-1.0, 1.0);
  }
  return loop;
}

std::vector<double> random_values(std::size_t cells, support::SplitMix64& rng) {
  std::vector<double> v(cells);
  for (auto& e : v) e = rng.uniform(-2.0, 2.0);
  return v;
}

void expect_near(const std::vector<double>& a, const std::vector<double>& b,
                 double tol = 1e-9) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], tol) << "cell " << i;
}

TEST(LinearIrTest, SequentialKnownValues) {
  // X[1] = 2 X[0] + 1; X[2] = 2 X[1] + 1 with X = {1, 0, 0}.
  LinearIrLoop loop{{3, {0, 1}, {1, 2}}, {2.0, 2.0}, {1.0, 1.0}};
  const auto x = linear_ir_sequential(loop, {1.0, 0.0, 0.0});
  EXPECT_EQ(x, (std::vector<double>{1.0, 3.0, 7.0}));
}

TEST(LinearIrTest, ParallelMatchesSequentialKnown) {
  LinearIrLoop loop{{3, {0, 1}, {1, 2}}, {2.0, 2.0}, {1.0, 1.0}};
  const auto x = linear_ir_parallel(loop, {1.0, 0.0, 0.0});
  expect_near(x, {1.0, 3.0, 7.0});
}

TEST(LinearIrTest, ParallelMatchesSequentialRandom) {
  support::SplitMix64 rng(31);
  for (int trial = 0; trial < 8; ++trial) {
    const auto loop = random_linear_loop(300, 400, rng);
    const auto init = random_values(400, rng);
    expect_near(linear_ir_parallel(loop, init), linear_ir_sequential(loop, init), 1e-8);
  }
}

TEST(LinearIrTest, ZeroMultiplierResetsChains) {
  // mul = 0 makes an equation constant — the det = 0 short-circuit path.
  support::SplitMix64 rng(32);
  auto loop = random_linear_loop(200, 300, rng, 0.9);
  for (std::size_t i = 0; i < loop.mul.size(); i += 3) loop.mul[i] = 0.0;
  const auto init = random_values(300, rng);
  expect_near(linear_ir_parallel(loop, init), linear_ir_sequential(loop, init), 1e-8);
}

TEST(LinearIrTest, ChainReadsUpstreamWrittenCellAsInitialWhenUnwritten) {
  // f hits a cell that IS in g's image but is written only LATER: the value
  // read must be the initial one (the root_value hook, not the coefficient).
  LinearIrLoop loop;
  loop.system = OrdinaryIrSystem{3, {2, 0}, {1, 2}};  // i0 reads cell 2, i1 writes it
  loop.mul = {3.0, 5.0};
  loop.add = {1.0, 2.0};
  const std::vector<double> init{10.0, 0.0, 4.0};
  // Sequential: X[1] = 3*X[2]+1 = 13; X[2] = 5*X[0]+2 = 52.
  const auto expect = linear_ir_sequential(loop, init);
  EXPECT_EQ(expect, (std::vector<double>{10.0, 13.0, 52.0}));
  expect_near(linear_ir_parallel(loop, init), expect);
}

TEST(SelfLinearIrTest, FoldsInitialValueOfG) {
  // X[g] := X[g] + a*X[f] + b — the paper's rewriting with S[g(i)].
  SelfLinearIrLoop loop;
  loop.system = OrdinaryIrSystem{3, {0, 1}, {1, 2}};
  loop.a = {2.0, 3.0};
  loop.b = {0.5, 0.25};
  loop.c = {0.0, 0.0};
  loop.d = {1.0, 1.0};
  const std::vector<double> init{1.0, 10.0, 20.0};
  // X[1] = 10 + 2*1 + 0.5 = 12.5; X[2] = 20 + 3*12.5 + 0.25 = 57.75.
  const auto expect = self_linear_ir_sequential(loop, init);
  EXPECT_EQ(expect, (std::vector<double>{1.0, 12.5, 57.75}));
  expect_near(self_linear_ir_parallel(loop, init), expect);
}

TEST(SelfLinearIrTest, FullFormRandom) {
  support::SplitMix64 rng(33);
  for (int trial = 0; trial < 8; ++trial) {
    SelfLinearIrLoop loop;
    loop.system = testing::random_ordinary_system(200, 280, rng, 0.8);
    const std::size_t n = loop.system.iterations();
    loop.a.resize(n);
    loop.b.resize(n);
    loop.c.resize(n);
    loop.d.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      loop.a[i] = rng.uniform(-0.5, 0.5);
      loop.b[i] = rng.uniform(-0.5, 0.5);
      loop.c[i] = rng.uniform(-0.2, 0.2);
      loop.d[i] = rng.uniform(0.3, 0.8);
    }
    const auto init = random_values(280, rng);
    expect_near(self_linear_ir_parallel(loop, init),
                self_linear_ir_sequential(loop, init), 1e-7);
  }
}

TEST(MoebiusIrTest, FractionalLoopMatches) {
  support::SplitMix64 rng(34);
  for (int trial = 0; trial < 5; ++trial) {
    MoebiusIrLoop loop;
    loop.system = testing::random_ordinary_system(100, 150, rng, 0.7);
    loop.maps.resize(100);
    for (auto& m : loop.maps) {
      // Well-conditioned fractional maps: dominant diagonal, positive det.
      m = MoebiusMap{rng.uniform(0.8, 1.2), rng.uniform(-0.2, 0.2),
                     rng.uniform(0.0, 0.1), rng.uniform(0.9, 1.1)};
    }
    std::vector<double> init(150);
    for (auto& v : init) v = rng.uniform(0.5, 1.5);
    const auto expect = moebius_ir_sequential(loop, init);
    const auto actual = moebius_ir_parallel(loop, init);
    ASSERT_EQ(actual.size(), expect.size());
    for (std::size_t i = 0; i < actual.size(); ++i) {
      EXPECT_NEAR(actual[i], expect[i], 1e-6) << "cell " << i;
    }
  }
}

TEST(LinearIrTest, ThreadPoolMatches) {
  support::SplitMix64 rng(35);
  const auto loop = random_linear_loop(1000, 1200, rng, 0.9);
  const auto init = random_values(1200, rng);
  parallel::ThreadPool pool(4);
  OrdinaryIrOptions options;
  options.pool = &pool;
  expect_near(linear_ir_parallel(loop, init, options), linear_ir_sequential(loop, init),
              1e-8);
}

TEST(LinearIrTest, ValidationErrors) {
  LinearIrLoop loop{{3, {0}, {1}}, {1.0, 2.0}, {0.0}};
  EXPECT_THROW(loop.validate(), support::ContractViolation);
  MoebiusIrLoop mloop{{3, {0}, {1}}, {}};
  EXPECT_THROW(mloop.validate(), support::ContractViolation);
}

}  // namespace
}  // namespace ir::core
