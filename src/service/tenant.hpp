// Multi-tenant vocabulary of the HTTP serving tier (docs/http.md).
//
// A tenant is an API key plus policy: a fair-share `weight` consumed by the
// deficit-round-robin scheduler (service/qos.hpp) and a token-bucket rate
// limit enforced *before* queueing — an over-rate tenant is answered 429
// without ever touching the shared queues, so its overage cannot convert
// into latency for anyone else.  irserve configures tenants from
// `--tenant=name:key:weight:rate:burst` flags; an empty registry means the
// tier runs open (every request lands on a built-in "default" tenant with
// weight 1 and no rate limit), which keeps single-user harnesses simple.
//
// Per-tenant counters are plain atomics (advisory snapshot semantics, like
// ServiceStats); the token bucket is the only locked state.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "service/request.hpp"
#include "support/thread_annotations.hpp"

namespace ir::service {

/// Static tenant policy, parsed from "name:key:weight:rate:burst".
struct TenantSpec {
  std::string name;
  std::string api_key;
  std::uint64_t weight = 1;       ///< DRR quantum multiplier (>= 1)
  double rate_per_sec = 0.0;      ///< token refill rate; 0 = unlimited
  double burst = 0.0;             ///< bucket depth; 0 = rate_per_sec (min 1)

  /// Parse the flag form.  nullopt (with *error set) on malformed input.
  static std::optional<TenantSpec> parse(const std::string& text,
                                         std::string* error);
};

/// Classic token bucket: `rate` tokens/second refill up to `burst`; each
/// admitted request spends one token.  rate == 0 disables limiting.
class TokenBucket {
 public:
  TokenBucket(double rate_per_sec, double burst)
      : rate_(rate_per_sec),
        burst_(burst > 0 ? burst : (rate_per_sec > 0 ? std::max(rate_per_sec, 1.0) : 0)),
        tokens_(burst_),
        refilled_(Clock::now()) {}

  /// Spend one token if available.  Unlimited buckets always admit.
  [[nodiscard]] bool try_take() IR_EXCLUDES(mutex_);

  [[nodiscard]] bool limited() const noexcept { return rate_ > 0; }

 private:
  const double rate_;
  const double burst_;
  support::Mutex mutex_;
  double tokens_ IR_GUARDED_BY(mutex_);
  Clock::time_point refilled_ IR_GUARDED_BY(mutex_);
};

/// One live tenant: spec + bucket + counters.
class Tenant {
 public:
  Tenant(TenantSpec spec, std::size_t index)
      : spec_(std::move(spec)),
        index_(index),
        bucket_(spec_.rate_per_sec, spec_.burst) {}

  [[nodiscard]] const TenantSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] const std::string& name() const noexcept { return spec_.name; }
  [[nodiscard]] std::size_t index() const noexcept { return index_; }
  [[nodiscard]] TokenBucket& bucket() noexcept { return bucket_; }

  struct Counters {
    std::uint64_t requests = 0;      ///< authenticated requests seen
    std::uint64_t admitted = 0;      ///< passed the rate limit, queued
    std::uint64_t rate_limited = 0;  ///< answered 429
    std::uint64_t queue_rejected = 0;///< per-tenant QoS queue overflow (503)
    std::uint64_t completed_ok = 0;
    std::uint64_t completed_error = 0;
  };

  void count_request() noexcept { requests_.fetch_add(1, std::memory_order_relaxed); }
  void count_admitted() noexcept { admitted_.fetch_add(1, std::memory_order_relaxed); }
  void count_rate_limited() noexcept {
    rate_limited_.fetch_add(1, std::memory_order_relaxed);
  }
  void count_queue_rejected() noexcept {
    queue_rejected_.fetch_add(1, std::memory_order_relaxed);
  }
  void count_completed(bool ok) noexcept {
    (ok ? completed_ok_ : completed_error_).fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] Counters counters() const noexcept {
    Counters out;
    out.requests = requests_.load(std::memory_order_relaxed);
    out.admitted = admitted_.load(std::memory_order_relaxed);
    out.rate_limited = rate_limited_.load(std::memory_order_relaxed);
    out.queue_rejected = queue_rejected_.load(std::memory_order_relaxed);
    out.completed_ok = completed_ok_.load(std::memory_order_relaxed);
    out.completed_error = completed_error_.load(std::memory_order_relaxed);
    return out;
  }

 private:
  TenantSpec spec_;
  std::size_t index_;
  TokenBucket bucket_;
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> rate_limited_{0};
  std::atomic<std::uint64_t> queue_rejected_{0};
  std::atomic<std::uint64_t> completed_ok_{0};
  std::atomic<std::uint64_t> completed_error_{0};
};

/// Fixed tenant set, built once before the tier starts (no registration
/// races — authentication reads immutable structure, counters are atomic).
class TenantRegistry {
 public:
  /// Empty spec list = open access: one "default" tenant, unlimited,
  /// matched by any (or no) API key.
  explicit TenantRegistry(std::vector<TenantSpec> specs);

  /// The tenant owning `api_key`, or nullptr (unknown key).  In open mode
  /// every key — including none — maps to the default tenant.
  [[nodiscard]] Tenant* authenticate(const std::string& api_key) noexcept;

  [[nodiscard]] bool open_access() const noexcept { return open_; }
  [[nodiscard]] std::size_t size() const noexcept { return tenants_.size(); }
  [[nodiscard]] Tenant& tenant(std::size_t index) noexcept { return *tenants_[index]; }
  [[nodiscard]] const Tenant& tenant(std::size_t index) const noexcept {
    return *tenants_[index];
  }

 private:
  bool open_ = false;
  std::vector<std::unique_ptr<Tenant>> tenants_;
};

}  // namespace ir::service
