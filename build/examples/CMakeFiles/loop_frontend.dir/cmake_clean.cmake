file(REMOVE_RECURSE
  "CMakeFiles/loop_frontend.dir/loop_frontend.cpp.o"
  "CMakeFiles/loop_frontend.dir/loop_frontend.cpp.o.d"
  "loop_frontend"
  "loop_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loop_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
