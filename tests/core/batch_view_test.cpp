// BatchView layout contract: cell-major SoA addressing, stride >= lanes,
// lossless row <-> batch transposition, and loud rejection of shape errors —
// the wide executor indexes straight through this math.
#include "core/batch_view.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace ir::core {
namespace {

TEST(BatchViewTest, CellMajorAddressing) {
  BatchView<int> batch(3, 4);
  EXPECT_EQ(batch.cells(), 3u);
  EXPECT_EQ(batch.lanes(), 4u);
  EXPECT_EQ(batch.stride(), 4u);
  EXPECT_FALSE(batch.empty());

  for (std::size_t cell = 0; cell < 3; ++cell) {
    for (std::size_t lane = 0; lane < 4; ++lane) {
      batch.at(cell, lane) = static_cast<int>(cell * 100 + lane);
    }
  }
  // row(cell) is a contiguous K-lane slice at data() + cell * stride.
  for (std::size_t cell = 0; cell < 3; ++cell) {
    EXPECT_EQ(batch.row(cell), batch.data() + cell * batch.stride());
    for (std::size_t lane = 0; lane < 4; ++lane) {
      EXPECT_EQ(batch.row(cell)[lane], static_cast<int>(cell * 100 + lane));
    }
  }
}

TEST(BatchViewTest, StrideMayExceedLanesAndPaddingIsPreserved) {
  BatchView<int> batch(2, 3, 8);
  EXPECT_EQ(batch.stride(), 8u);
  for (std::size_t cell = 0; cell < 2; ++cell) {
    for (std::size_t lane = 0; lane < 3; ++lane) {
      batch.at(cell, lane) = static_cast<int>(10 * cell + lane);
    }
  }
  // Rows land stride apart, not lanes apart.
  EXPECT_EQ(batch.row(1) - batch.row(0), 8);
  EXPECT_EQ(batch.at(1, 0), 10);
  // Padding lanes stay value-initialized.
  EXPECT_EQ(batch.data()[3], 0);
  EXPECT_EQ(batch.data()[7], 0);
}

TEST(BatchViewTest, StrideBelowLanesThrows) {
  EXPECT_THROW(BatchView<int>(4, 8, 2), std::invalid_argument);
}

TEST(BatchViewTest, FromRowsToRowsRoundTrips) {
  const std::vector<std::vector<std::string>> rows = {
      {"a", "b", "c"}, {"d", "e", "f"}, {"g", "h", "i"}, {"j", "k", "l"}};
  const auto batch = BatchView<std::string>::from_rows(rows, 3);
  EXPECT_EQ(batch.cells(), 3u);
  EXPECT_EQ(batch.lanes(), 4u);
  // from_rows transposes: lane k carries row k.
  EXPECT_EQ(batch.at(0, 0), "a");
  EXPECT_EQ(batch.at(2, 1), "f");
  EXPECT_EQ(batch.at(1, 3), "k");
  EXPECT_EQ(batch.to_rows(), rows);
}

TEST(BatchViewTest, FromRowsRejectsRaggedRows) {
  const std::vector<std::vector<int>> ragged = {{1, 2, 3}, {4, 5}};
  EXPECT_THROW(BatchView<int>::from_rows(ragged, 3), std::invalid_argument);
}

TEST(BatchViewTest, EmptyShapes) {
  const BatchView<int> none;
  EXPECT_TRUE(none.empty());
  const auto zero_lanes = BatchView<int>::from_rows({}, 5);
  EXPECT_TRUE(zero_lanes.empty());
  EXPECT_EQ(zero_lanes.cells(), 5u);
  EXPECT_EQ(zero_lanes.to_rows().size(), 0u);
  const BatchView<int> zero_cells(0, 3);
  EXPECT_TRUE(zero_cells.empty());
}

}  // namespace
}  // namespace ir::core
