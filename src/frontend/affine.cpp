#include "frontend/affine.hpp"

#include <algorithm>

namespace ir::frontend {

void AffineExpr::normalize() {
  std::sort(terms_.begin(), terms_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<std::pair<std::size_t, std::int64_t>> merged;
  for (const auto& [var, coeff] : terms_) {
    if (!merged.empty() && merged.back().first == var) {
      merged.back().second += coeff;
    } else {
      merged.push_back({var, coeff});
    }
  }
  merged.erase(std::remove_if(merged.begin(), merged.end(),
                              [](const auto& t) { return t.second == 0; }),
               merged.end());
  terms_ = std::move(merged);
}

AffineExpr& AffineExpr::operator+=(const AffineExpr& rhs) {
  constant_ += rhs.constant_;
  terms_.insert(terms_.end(), rhs.terms_.begin(), rhs.terms_.end());
  normalize();
  return *this;
}

AffineExpr& AffineExpr::operator-=(const AffineExpr& rhs) {
  constant_ -= rhs.constant_;
  for (const auto& [var, coeff] : rhs.terms_) terms_.push_back({var, -coeff});
  normalize();
  return *this;
}

AffineExpr& AffineExpr::operator*=(std::int64_t factor) {
  constant_ *= factor;
  for (auto& [var, coeff] : terms_) coeff *= factor;
  if (factor == 0) terms_.clear();
  return *this;
}

std::int64_t AffineExpr::evaluate(std::span<const std::int64_t> vars) const {
  std::int64_t value = constant_;
  for (const auto& [var, coeff] : terms_) {
    IR_REQUIRE(var < vars.size(), "affine expression references variable " +
                                      std::to_string(var) + " but only " +
                                      std::to_string(vars.size()) + " are in scope");
    value += coeff * vars[var];
  }
  return value;
}

std::size_t AffineExpr::variables_needed() const noexcept {
  return terms_.empty() ? 0 : terms_.back().first + 1;
}

AffineExpr AffineExpr::remap_variables(std::span<const std::size_t> permutation) const {
  AffineExpr out;
  out.constant_ = constant_;
  for (const auto& [var, coeff] : terms_) {
    IR_REQUIRE(var < permutation.size(), "remap permutation too short");
    out.terms_.push_back({permutation[var], coeff});
  }
  out.normalize();
  return out;
}

std::string AffineExpr::to_string(std::span<const std::string> var_names) const {
  std::string out;
  for (const auto& [var, coeff] : terms_) {
    const std::string name =
        var < var_names.size() ? var_names[var] : "v" + std::to_string(var);
    if (out.empty()) {
      if (coeff == 1) {
        out = name;
      } else if (coeff == -1) {
        out = "-" + name;
      } else {
        out = std::to_string(coeff) + "*" + name;
      }
    } else {
      const std::int64_t mag = coeff < 0 ? -coeff : coeff;
      out += coeff < 0 ? " - " : " + ";
      if (mag != 1) out += std::to_string(mag) + "*";
      out += name;
    }
  }
  if (constant_ != 0 || out.empty()) {
    if (out.empty()) {
      out = std::to_string(constant_);
    } else {
      out += constant_ < 0 ? " - " : " + ";
      out += std::to_string(constant_ < 0 ? -constant_ : constant_);
    }
  }
  return out;
}

}  // namespace ir::frontend
