// Chrome trace_event export: structure, per-worker tracks, monotone ts.
//
// These checks scan the writer's own output format; the stricter
// full-JSON-parse check lives in tools/check_trace_json.py, which CTest runs
// against a real `irtool solve --trace=` invocation (telemetry-ON builds).
#include "obs/trace_export.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <thread>
#include <vector>

#include "obs/span.hpp"
#include "obs/telemetry.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"

namespace {

using namespace ir;

// Split the document into event objects (the writer emits one per "{\"ph\":").
std::vector<std::string> event_objects(const std::string& json) {
  std::vector<std::string> events;
  std::size_t at = json.find("{\"ph\":");
  while (at != std::string::npos) {
    const std::size_t next = json.find("{\"ph\":", at + 1);
    events.push_back(json.substr(at, next == std::string::npos ? json.size() - at
                                                               : next - at));
    at = next;
  }
  return events;
}

std::string field(const std::string& event, const std::string& key) {
  const std::string marker = "\"" + key + "\":";
  const std::size_t at = event.find(marker);
  if (at == std::string::npos) return {};
  std::size_t begin = at + marker.size();
  std::size_t end = begin;
  while (end < event.size() && event[end] != ',' && event[end] != '}') ++end;
  return event.substr(begin, end - begin);
}

TEST(TraceExport, EmptyTraceIsStillAValidDocument) {
  const std::string json = obs::chrome_trace_json({});
  EXPECT_EQ(json.find("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["), 0u);
  EXPECT_NE(json.find("]}"), std::string::npos);
}

TEST(TraceExport, PoolWorkersGetOneTrackEach) {
#if !IR_TELEMETRY_ENABLED
  GTEST_SKIP() << "pool instrumentation is compiled out with IR_TELEMETRY=OFF";
#endif
  obs::tracer().clear();
  obs::tracer().set_enabled(true);
  constexpr std::size_t kWorkers = 4;
  {
    parallel::ThreadPool pool(kWorkers);
    // Several batches so every worker records at least one task span.
    for (int round = 0; round < 16; ++round) {
      parallel::parallel_for(pool, 1000, [](std::size_t) {});
    }
  }
  obs::tracer().set_enabled(false);
  const std::string json = obs::chrome_trace_json(obs::tracer().drain());

  for (std::size_t w = 0; w < kWorkers; ++w) {
    const std::string name = "pool-worker-" + std::to_string(w);
    EXPECT_NE(json.find("\"name\":\"" + name + "\""), std::string::npos)
        << "missing thread_name track for " << name;
  }
  EXPECT_NE(json.find("\"name\":\"pool.task\""), std::string::npos);
}

// Uses the direct ScopedSpan API (not the macros) so the exporter contract
// is checked in both telemetry build modes.
TEST(TraceExport, TimestampsAreMonotonePerTrack) {
  obs::tracer().clear();
  obs::tracer().set_enabled(true);
  std::thread side([] {
    obs::set_thread_name("export-test-side");
    for (int round = 0; round < 8; ++round) {
      obs::ScopedSpan span("export-test-side-round");
    }
  });
  for (int round = 0; round < 8; ++round) {
    obs::ScopedSpan span("export-test-round");
  }
  side.join();
  obs::tracer().set_enabled(false);
  const std::string json = obs::chrome_trace_json(obs::tracer().drain());

  std::map<std::string, double> last_ts;
  std::size_t x_events = 0;
  for (const auto& event : event_objects(json)) {
    if (field(event, "ph") != "\"X\"") continue;
    ++x_events;
    const std::string tid = field(event, "tid");
    const double ts = std::stod(field(event, "ts"));
    ASSERT_FALSE(tid.empty());
    const auto it = last_ts.find(tid);
    if (it != last_ts.end()) {
      EXPECT_GE(ts, it->second) << "ts went backwards on track " << tid;
    }
    last_ts[tid] = ts;
    EXPECT_GE(std::stod(field(event, "dur")), 0.0);
  }
  EXPECT_GT(x_events, 0u);
  EXPECT_GE(last_ts.size(), 2u);  // main thread + at least one worker
}

TEST(TraceExport, EscapesThreadNames) {
  obs::tracer().clear();
  obs::tracer().set_enabled(true);
  std::thread worker([] {
    obs::set_thread_name("quote\"and\\slash");
    obs::ScopedSpan span("escape-test");
  });
  worker.join();
  obs::tracer().set_enabled(false);
  const std::string json = obs::chrome_trace_json(obs::tracer().drain());
  EXPECT_NE(json.find("quote\\\"and\\\\slash"), std::string::npos);
}

}  // namespace
