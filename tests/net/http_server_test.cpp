// Connection lifecycle of the epoll HTTP frontend (src/net/http_server.hpp):
// keep-alive, pipelining, parse-error responses, slow-client timeouts, and
// graceful stop.  Tests talk to a real listening socket — through the repo's
// HttpClient for well-formed traffic, and through a raw socket when the
// point is to be ill-formed (truncated requests, dribbled bytes).
#include "net/http_server.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include "net/http_client.hpp"

namespace ir::net {
namespace {

using namespace std::chrono_literals;

HttpServerConfig fast_config() {
  HttpServerConfig config;
  config.port = 0;            // ephemeral
  config.workers = 2;
  config.tick = 10ms;         // snappy timeout scans for test speed
  return config;
}

/// Echo-ish handler: answers 200 with method/path/body facts.
HttpServer::Handler echo_handler() {
  return [](HttpRequest&& request, Responder responder) {
    HttpResponse response;
    response.content_type = "text/plain";
    response.body = request.method + " " + request.path + " body=" + request.body;
    responder.send(std::move(response));
  };
}

/// Raw blocking client socket for malformed / partial traffic.
class RawConn {
 public:
  explicit RawConn(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ =
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
  }
  ~RawConn() {
    if (fd_ >= 0) ::close(fd_);
  }

  [[nodiscard]] bool connected() const { return connected_; }

  void send(const std::string& bytes) const {
    ASSERT_EQ(::send(fd_, bytes.data(), bytes.size(), 0),
              static_cast<ssize_t>(bytes.size()));
  }

  /// Read until the peer closes (or `limit` bytes); returns what arrived.
  [[nodiscard]] std::string read_until_close(std::size_t limit = 1 << 20) const {
    std::string out;
    char buf[4096];
    while (out.size() < limit) {
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) break;
      out.append(buf, static_cast<std::size_t>(n));
    }
    return out;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

TEST(HttpServer, ServesAndKeepsAlive) {
  HttpServer server(fast_config(), echo_handler());
  ASSERT_TRUE(server.start()) << server.error();

  HttpClient client("127.0.0.1", server.port());
  HttpClientResponse response;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(client.post("/x", "ping" + std::to_string(i), &response))
        << client.error();
    EXPECT_EQ(response.status, 200);
    EXPECT_EQ(response.body, "POST /x body=ping" + std::to_string(i));
  }
  EXPECT_EQ(client.reconnects(), 0u) << "keep-alive must hold across requests";

  const HttpServerStats stats = server.stats();
  EXPECT_EQ(stats.requests, 5u);
  EXPECT_EQ(stats.responses, 5u);
  EXPECT_EQ(stats.accepted, 1u);
  server.stop();
}

TEST(HttpServer, PipelinedRequestsAnswerInOrder) {
  HttpServer server(fast_config(), echo_handler());
  ASSERT_TRUE(server.start()) << server.error();

  RawConn conn(server.port());
  ASSERT_TRUE(conn.connected());
  // Three requests in one write; the last closes the connection so
  // read_until_close terminates.
  conn.send(
      "GET /a HTTP/1.1\r\n\r\n"
      "GET /b HTTP/1.1\r\n\r\n"
      "GET /c HTTP/1.1\r\nConnection: close\r\n\r\n");
  const std::string wire = conn.read_until_close();
  const std::size_t a = wire.find("body=");
  const std::size_t b = wire.find("GET /b", a);
  const std::size_t c = wire.find("GET /c", b);
  EXPECT_NE(wire.find("GET /a"), std::string::npos) << wire;
  EXPECT_NE(b, std::string::npos) << "responses out of order:\n" << wire;
  EXPECT_NE(c, std::string::npos) << "responses out of order:\n" << wire;
}

TEST(HttpServer, ParseErrorAnswersAndCloses) {
  HttpServer server(fast_config(), echo_handler());
  ASSERT_TRUE(server.start()) << server.error();

  RawConn conn(server.port());
  ASSERT_TRUE(conn.connected());
  conn.send("GET / HTTP/9.9\r\n\r\n");
  const std::string wire = conn.read_until_close();
  EXPECT_NE(wire.find("505"), std::string::npos) << wire;
  EXPECT_EQ(server.stats().parse_errors, 1u);
}

TEST(HttpServer, OversizedHeadersRejected431) {
  HttpServerConfig config = fast_config();
  config.limits.max_header_bytes = 256;
  HttpServer server(config, echo_handler());
  ASSERT_TRUE(server.start()) << server.error();

  RawConn conn(server.port());
  ASSERT_TRUE(conn.connected());
  conn.send("GET / HTTP/1.1\r\nX-Big: " + std::string(1024, 'v') + "\r\n\r\n");
  const std::string wire = conn.read_until_close();
  EXPECT_NE(wire.find("431"), std::string::npos) << wire;
}

TEST(HttpServer, OversizedBodyRejected413) {
  HttpServerConfig config = fast_config();
  config.limits.max_body_bytes = 16;
  HttpServer server(config, echo_handler());
  ASSERT_TRUE(server.start()) << server.error();

  RawConn conn(server.port());
  ASSERT_TRUE(conn.connected());
  conn.send("POST / HTTP/1.1\r\nContent-Length: 64\r\n\r\n");
  const std::string wire = conn.read_until_close();
  EXPECT_NE(wire.find("413"), std::string::npos) << wire;
}

TEST(HttpServer, MalformedChunkedBodyRejected400) {
  HttpServer server(fast_config(), echo_handler());
  ASSERT_TRUE(server.start()) << server.error();

  RawConn conn(server.port());
  ASSERT_TRUE(conn.connected());
  conn.send("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
            "nothex\r\n");
  const std::string wire = conn.read_until_close();
  EXPECT_NE(wire.find("400"), std::string::npos) << wire;
}

TEST(HttpServer, TruncatedRequestTimesOut408) {
  HttpServerConfig config = fast_config();
  config.header_timeout = 50ms;
  HttpServer server(config, echo_handler());
  ASSERT_TRUE(server.start()) << server.error();

  RawConn conn(server.port());
  ASSERT_TRUE(conn.connected());
  conn.send("POST /half HTTP/1.1\r\nContent-Le");  // stall mid-headers
  const std::string wire = conn.read_until_close();
  EXPECT_NE(wire.find("408"), std::string::npos) << wire;
  EXPECT_GE(server.stats().timeouts, 1u);
}

TEST(HttpServer, IdleKeepAliveConnectionReaped) {
  HttpServerConfig config = fast_config();
  config.idle_timeout = 50ms;
  HttpServer server(config, echo_handler());
  ASSERT_TRUE(server.start()) << server.error();

  RawConn conn(server.port());
  ASSERT_TRUE(conn.connected());
  conn.send("GET / HTTP/1.1\r\n\r\n");
  // First response arrives, then the idle connection is closed by the
  // server's tick — read_until_close returns once that happens.
  const std::string wire = conn.read_until_close();
  EXPECT_NE(wire.find("200"), std::string::npos) << wire;
  for (int i = 0; i < 100 && server.stats().open_connections != 0; ++i) {
    std::this_thread::sleep_for(10ms);
  }
  EXPECT_EQ(server.stats().open_connections, 0u);
}

TEST(HttpServer, SlowDribbledRequestStillParses) {
  HttpServer server(fast_config(), echo_handler());
  ASSERT_TRUE(server.start()) << server.error();

  RawConn conn(server.port());
  ASSERT_TRUE(conn.connected());
  const std::string wire =
      "POST /slow HTTP/1.1\r\nContent-Length: 4\r\nConnection: close\r\n\r\nslow";
  for (std::size_t i = 0; i < wire.size(); i += 7) {
    conn.send(wire.substr(i, 7));
    std::this_thread::sleep_for(1ms);
  }
  const std::string got = conn.read_until_close();
  EXPECT_NE(got.find("body=slow"), std::string::npos) << got;
}

TEST(HttpServer, HandlerCompletingOnAnotherThread) {
  // The Responder contract: send() from any thread, any time later.
  std::atomic<int> completions{0};
  HttpServer server(fast_config(),
                    [&completions](HttpRequest&&, Responder responder) {
                      std::thread([responder, &completions] {
                        std::this_thread::sleep_for(20ms);
                        HttpResponse response;
                        response.body = "late";
                        responder.send(std::move(response));
                        completions.fetch_add(1);
                      }).detach();
                    });
  ASSERT_TRUE(server.start()) << server.error();

  HttpClient client("127.0.0.1", server.port());
  HttpClientResponse response;
  ASSERT_TRUE(client.get("/deferred", &response)) << client.error();
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body, "late");
  for (int i = 0; i < 100 && completions.load() == 0; ++i) {
    std::this_thread::sleep_for(5ms);
  }
  server.stop();
}

TEST(HttpServer, GracefulStopDrainsInFlight) {
  std::atomic<bool> entered{false};
  HttpServer server(fast_config(),
                    [&entered](HttpRequest&&, Responder responder) {
                      entered.store(true);
                      std::this_thread::sleep_for(50ms);
                      HttpResponse response;
                      response.body = "drained";
                      responder.send(std::move(response));
                    });
  ASSERT_TRUE(server.start()) << server.error();

  HttpClient client("127.0.0.1", server.port());
  HttpClientResponse response;
  std::thread requester([&client, &response] {
    ASSERT_TRUE(client.get("/", &response)) << client.error();
  });
  while (!entered.load()) std::this_thread::sleep_for(1ms);
  server.stop();  // must wait for the in-flight response, not cut it off
  requester.join();
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body, "drained");
}

TEST(HttpServer, StopIsIdempotent) {
  HttpServer server(fast_config(), echo_handler());
  ASSERT_TRUE(server.start()) << server.error();
  server.stop();
  server.stop();  // second stop is a no-op, not a crash
}

}  // namespace
}  // namespace ir::net
