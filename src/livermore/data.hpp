// Workspace and data initialization for the Livermore Loops substrate.
//
// The paper's Section-1 claim — that most of the 24 Livermore kernels carry
// *indexed* recurrences rather than classic linear ones — is reproduced on
// structurally faithful C++ adaptations of the classic McMahon kernels.
// The original Fortran/C sources are not redistributable here; each kernel in
// kernels.hpp documents the loop structure it preserves, which is the only
// property the classification and the IR parallelization depend on.
//
// All arrays live in one Workspace so kernels read/write the same storage
// the way the original benchmark did; initialization is deterministic from a
// seed (values in (0, 1)-ish ranges keep the recurrences numerically tame).
#pragma once

#include <cstdint>
#include <vector>

#include "support/contract.hpp"
#include "support/rng.hpp"

namespace ir::livermore {

/// Dense row-major 2-D array of doubles.
class Grid {
 public:
  Grid() = default;
  Grid(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  [[nodiscard]] double& at(std::size_t r, std::size_t c) {
    IR_REQUIRE(r < rows_ && c < cols_, "grid index out of range");
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const {
    IR_REQUIRE(r < rows_ && c < cols_, "grid index out of range");
    return data_[r * cols_ + c];
  }

  /// Flat cell index of (r, c) — used when a 2-D loop is modeled as an IR
  /// system over flattened cells (the paper flattens loop 23 the same way:
  /// g(i) = 7(i-1) + j).
  [[nodiscard]] std::size_t flat(std::size_t r, std::size_t c) const {
    IR_REQUIRE(r < rows_ && c < cols_, "grid index out of range");
    return r * cols_ + c;
  }

  [[nodiscard]] const std::vector<double>& data() const noexcept { return data_; }
  [[nodiscard]] std::vector<double>& data() noexcept { return data_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// All state the 24 kernels touch.
struct Workspace {
  // Classic sizes: most 1-D kernels run over `loop_n` elements with some
  // slack for the offset reads (z[k+11], u[k+6], ...).
  std::size_t loop_n = 1001;  ///< main 1-D trip count
  std::size_t loop_2d = 101;  ///< 2-D row count (kernels 18, 23: 101 x 7)

  // 1-D arrays (sized loop_n + 32 slack).
  std::vector<double> x, y, z, u, v, w;
  std::vector<double> xx, grd, ex, dex, rh;           // kernel 14/20 helpers
  std::vector<double> b5, sa, sb;                     // kernel 19
  std::vector<double> vxne, vxnd, vlr, vlin, ve3;     // kernel 17
  std::vector<std::int64_t> ix, ir;                   // kernel 14 index arrays

  // 2-D arrays.
  Grid px, cx;              // kernels 9, 10, 21 (px: loop_n x 13)
  Grid vy;                  // kernel 21 (loop_n x 25 truncated)
  Grid u1, u2, u3;          // kernel 8 (3 planes x (loop_2d+2) x 5), flattened plane dim
  Grid b_k6;                // kernel 6 lower-triangular coefficients
  Grid zp, zq, zr, zm, zb, zu, zv, zz, za;  // kernels 18, 23 ((loop_2d+2) x 7)
  Grid vs, ve;              // kernel 15
  Grid p_k13, b_k13, c_k13, h_k13;          // kernel 13 (2-D PIC)
  std::vector<double> y_k13, z_k13;
  std::vector<std::int64_t> e_k13, f_k13;

  // Scalars.
  double q = 0.0, r = 4.86, t = 276.0, s = 0.0041;
  double dk = 0.175;  ///< the relaxation constant the paper quotes for loop 23

  /// Build a workspace with the classic sizes and deterministic pseudo-random
  /// contents.  `scale` multiplies the 1-D trip count (the benches sweep it).
  static Workspace standard(std::uint64_t seed = 1997, std::size_t scale = 1);
};

}  // namespace ir::livermore
