// Exercises the deprecated one-shot shims (core/compat.hpp) on purpose;
// the define keeps -Werror builds green without losing the diagnostic
// elsewhere.
#define IR_COMPAT_ALLOW_DEPRECATED
#include "core/compat.hpp"
#include "core/ordinary_ir.hpp"

#include <gtest/gtest.h>

#include <bit>

#include "algebra/monoids.hpp"
#include "testing/random_systems.hpp"

namespace ir::core {
namespace {

using algebra::AddMonoid;
using algebra::ConcatMonoid;
using algebra::Mat2Monoid;
using testing::random_initial_u64;
using testing::random_ordinary_system;

TEST(OrdinaryIrSequentialTest, ExecutesLoopAsWritten) {
  // A[1] = A[0]+A[1]; A[2] = A[1]+A[2] with A = {1, 10, 100}.
  OrdinaryIrSystem sys{3, {0, 1}, {1, 2}};
  const auto out = ordinary_ir_sequential(AddMonoid<std::uint64_t>{}, sys, {1, 10, 100});
  EXPECT_EQ(out, (std::vector<std::uint64_t>{1, 11, 111}));
}

TEST(OrdinaryIrSequentialTest, ValidatesInitialSize) {
  OrdinaryIrSystem sys{3, {0}, {1}};
  EXPECT_THROW(ordinary_ir_sequential(AddMonoid<std::uint64_t>{}, sys, {1, 2}),
               support::ContractViolation);
}

TEST(OrdinaryIrParallelTest, EmptySystem) {
  OrdinaryIrSystem sys{3, {}, {}};
  const auto out = ordinary_ir_parallel(AddMonoid<std::uint64_t>{}, sys, {5, 6, 7});
  EXPECT_EQ(out, (std::vector<std::uint64_t>{5, 6, 7}));
}

TEST(OrdinaryIrParallelTest, UntouchedCellsKeepInitialValues) {
  OrdinaryIrSystem sys{5, {0}, {2}};
  const auto out = ordinary_ir_parallel(AddMonoid<std::uint64_t>{}, sys, {1, 2, 3, 4, 5});
  EXPECT_EQ(out, (std::vector<std::uint64_t>{1, 2, 4, 4, 5}));
}

TEST(OrdinaryIrParallelTest, SingleChainMatchesAndUsesLogRounds) {
  const std::size_t n = 1000;
  OrdinaryIrSystem sys;
  sys.cells = n + 1;
  for (std::size_t i = 0; i < n; ++i) {
    sys.f.push_back(i);
    sys.g.push_back(i + 1);
  }
  std::vector<std::uint64_t> init(n + 1, 1);
  const auto expect = ordinary_ir_sequential(AddMonoid<std::uint64_t>{}, sys, init);

  OrdinaryIrStats stats;
  OrdinaryIrOptions options;
  options.stats = &stats;
  const auto actual = ordinary_ir_parallel(AddMonoid<std::uint64_t>{}, sys, init, options);
  EXPECT_EQ(actual, expect);
  EXPECT_EQ(actual[n], n + 1);  // 1 + n additions of 1
  EXPECT_LE(stats.rounds, static_cast<std::size_t>(std::bit_width(n)));
  EXPECT_GE(stats.rounds, static_cast<std::size_t>(std::bit_width(n)) - 1);
}

TEST(OrdinaryIrParallelTest, NonCommutativeOrderPreserved) {
  // Lemma 1's ordering claim, witnessed by string concatenation: the
  // parallel result must equal the sequential left-to-right product.
  support::SplitMix64 rng(424242);
  for (int trial = 0; trial < 10; ++trial) {
    const auto sys = random_ordinary_system(60, 100, rng);
    std::vector<std::string> init(100);
    for (std::size_t c = 0; c < 100; ++c) init[c] = std::string(1, char('a' + c % 26));
    const auto expect = ordinary_ir_sequential(ConcatMonoid{}, sys, init);
    const auto actual = ordinary_ir_parallel(ConcatMonoid{}, sys, init);
    EXPECT_EQ(actual, expect) << "trial " << trial;
  }
}

TEST(OrdinaryIrParallelTest, NonCommutativeMatricesMatch) {
  support::SplitMix64 rng(99);
  Mat2Monoid<long> op;
  const auto sys = random_ordinary_system(40, 64, rng);
  std::vector<Mat2Monoid<long>::Value> init(64);
  for (auto& m : init) {
    m = {static_cast<long>(rng.below(3)), static_cast<long>(rng.below(3)),
         static_cast<long>(rng.below(3)), 1};
  }
  EXPECT_EQ(ordinary_ir_parallel(op, sys, init), ordinary_ir_sequential(op, sys, init));
}

TEST(OrdinaryIrParallelTest, EarlyTerminationDoesNotChangeResults) {
  support::SplitMix64 rng(7);
  const auto sys = random_ordinary_system(200, 300, rng);
  const auto init = random_initial_u64(300, rng);
  OrdinaryIrStats eager_stats, naive_stats;
  OrdinaryIrOptions eager, naive;
  eager.stats = &eager_stats;
  naive.early_termination = false;
  naive.stats = &naive_stats;
  const auto op = AddMonoid<std::uint64_t>{};
  const auto a = ordinary_ir_parallel(op, sys, init, eager);
  const auto b = ordinary_ir_parallel(op, sys, init, naive);
  EXPECT_EQ(a, b);
  EXPECT_EQ(eager_stats.rounds, naive_stats.rounds);
  EXPECT_LE(eager_stats.op_applications, naive_stats.op_applications);
}

TEST(OrdinaryIrParallelTest, ThreadPoolAndCapsMatch) {
  support::SplitMix64 rng(8);
  const auto sys = random_ordinary_system(500, 800, rng);
  const auto init = random_initial_u64(800, rng);
  const auto op = AddMonoid<std::uint64_t>{};
  const auto expect = ordinary_ir_sequential(op, sys, init);

  parallel::ThreadPool pool(4);
  for (std::size_t cap : {0u, 1u, 2u, 5u, 64u}) {
    OrdinaryIrOptions options;
    options.pool = &pool;
    options.processor_cap = cap;
    EXPECT_EQ(ordinary_ir_parallel(op, sys, init, options), expect) << "cap " << cap;
  }
}

TEST(OrdinaryIrParallelTest, RejectsNonInjectiveG) {
  OrdinaryIrSystem sys{3, {0, 0}, {1, 1}};
  EXPECT_THROW(ordinary_ir_parallel(AddMonoid<std::uint64_t>{}, sys, {1, 2, 3}),
               support::ContractViolation);
}

TEST(OrdinaryIrEngineTest, CustomHooksAreHonoured) {
  // root_value/self_value hooks: roots read 100+cell, self terms are 1000+i.
  OrdinaryIrSystem sys{4, {0, 1}, {1, 2}};
  const auto traces = ordinary_ir_iteration_values<AddMonoid<std::uint64_t>>(
      AddMonoid<std::uint64_t>{}, sys,
      [](std::size_t cell) { return 100 + cell; },
      [](std::size_t i) { return 1000 + i; });
  // i0: root -> (100+0) + (1000+0) = 1100; i1: 1100 + 1001 = 2101.
  EXPECT_EQ(traces, (std::vector<std::uint64_t>{1100, 2101}));
}

// The main property sweep: parallel == sequential across sizes, aliasing
// densities and seeds, for a commutative and a non-commutative monoid.
struct SweepParam {
  std::size_t iterations;
  std::size_t cells;
  double rewire;
  std::uint64_t seed;
};

class OrdinaryIrSweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(OrdinaryIrSweepTest, ParallelEqualsSequential) {
  const auto p = GetParam();
  support::SplitMix64 rng(p.seed);
  const auto sys = random_ordinary_system(p.iterations, p.cells, rng, p.rewire);
  const auto init = random_initial_u64(p.cells, rng);
  const auto op = AddMonoid<std::uint64_t>{};
  EXPECT_EQ(ordinary_ir_parallel(op, sys, init), ordinary_ir_sequential(op, sys, init));
}

TEST_P(OrdinaryIrSweepTest, OrderPreservedUnderSweep) {
  const auto p = GetParam();
  support::SplitMix64 rng(p.seed ^ 0xdead);
  const auto sys = random_ordinary_system(p.iterations, p.cells, rng, p.rewire);
  if (p.iterations <= 300) {
    // Strings make reordering visible character by character.
    std::vector<std::string> init(p.cells);
    for (std::size_t c = 0; c < p.cells; ++c) {
      init[c] = std::string(1, char('A' + c % 26));
    }
    EXPECT_EQ(ordinary_ir_parallel(ConcatMonoid{}, sys, init),
              ordinary_ir_sequential(ConcatMonoid{}, sys, init));
  } else {
    // Large sizes: 2x2 matrix products over Z/2^64 — still non-commutative,
    // but constant-size values.
    Mat2Monoid<std::uint64_t> op;
    std::vector<Mat2Monoid<std::uint64_t>::Value> init(p.cells);
    for (auto& m : init) {
      m = {rng.below(5), rng.below(5), rng.below(5), rng.below(5)};
    }
    EXPECT_EQ(ordinary_ir_parallel(op, sys, init), ordinary_ir_sequential(op, sys, init));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OrdinaryIrSweepTest,
    ::testing::Values(SweepParam{1, 2, 0.0, 1}, SweepParam{2, 4, 1.0, 2},
                      SweepParam{10, 10, 0.5, 3}, SweepParam{100, 120, 0.9, 4},
                      SweepParam{100, 500, 0.2, 5}, SweepParam{1000, 1500, 0.7, 6},
                      SweepParam{5000, 6000, 0.95, 7}, SweepParam{64, 64, 1.0, 8},
                      SweepParam{333, 1000, 0.5, 9}, SweepParam{2048, 2048, 0.8, 10}));

}  // namespace
}  // namespace ir::core
