// The compiler pipeline end to end: write a loop in the DSL, lower it to IR
// equations, analyze/classify it, and solve it in parallel — "thus, without
// using any data dependence analysis techniques, we managed to parallelize
// the loop" (paper Section 3).
//
//   $ ./loop_frontend           # runs the built-in Livermore-23 fragment
//   $ ./loop_frontend my.loop   # or a DSL file of your own
#include <cstdio>
#include <fstream>
#include <sstream>

#include "algebra/monoids.hpp"
#include "core/analyze.hpp"
#include "core/general_ir.hpp"
#include "core/solver.hpp"
#include "frontend/lower.hpp"
#include "frontend/parser.hpp"

namespace {

constexpr const char* kDefaultProgram = R"(# Livermore loop 23 fragment (paper Section 3)
array X[103][7]
for j = 1 .. 6 {
  for k = 1 .. 100 {
    X[k][j] = X[k-1][j] . X[k][j]
  }
}
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace ir;

  std::string source = kDefaultProgram;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in.good()) {
      std::fprintf(stderr, "cannot open '%s'\n", argv[1]);
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    source = buffer.str();
  }

  try {
    const auto program = frontend::parse_program(source);
    std::printf("parsed program:\n%s\n", program.to_string().c_str());

    const auto lowered = frontend::lower(program);
    std::printf("lowered: %zu equations over %zu cells\n\n",
                lowered.system.iterations(), lowered.system.cells);

    const auto report = core::analyze(lowered.system);
    std::printf("analysis:\n%s\n", report.to_string().c_str());

    algebra::ModMulMonoid op(1'000'000'007ull);
    std::vector<std::uint64_t> init(lowered.system.cells);
    for (std::size_t c = 0; c < init.size(); ++c) init[c] = 1 + c % 89;

    core::Solver solver;
    const auto plan = solver.compile(lowered.system);
    std::printf("compiled plan: %s\n", plan->describe().c_str());

    const auto parallel = solver.execute(*plan, op, init);
    const auto sequential = core::general_ir_sequential(op, lowered.system, init);
    std::printf("parallel solve matches sequential execution: %s\n",
                parallel == sequential ? "yes" : "NO");
    return parallel == sequential ? 0 : 1;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
