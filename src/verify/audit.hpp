// Whole-store static audit: verify AND cost every .irplan in a PlanStore
// directory, offline, before any server trusts it as a warm start.
//
// audit_store() scans the directory itself (not PlanStore::manifest, which
// silently skips bad files) so every entry yields an explicit verdict with a
// reason: a pass carries the plan's identity and its CostReport; a reject
// carries the loader/verifier diagnostic.  Load runs the full untrusted-file
// gauntlet of core/plan_io.hpp — structural validation, checksum,
// fingerprint, identity re-derivation (splice defense), and the static
// verifier — so "pass" here means exactly what PlanStore::get() would accept.
//
// Surfaced as `irtool audit <store-dir>` with documented exit codes
// (0 = every entry passed, 1 = at least one reject, 2 = usage/IO error).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "verify/cost.hpp"

namespace ir::verify {

/// Verdict for one .irplan file.
struct AuditEntry {
  std::string file;     ///< basename within the store directory
  bool ok = false;
  std::string reason;   ///< reject diagnostic (empty on pass)
  std::uint64_t store_key = 0;    ///< valid on pass
  std::uint64_t fingerprint = 0;  ///< valid on pass
  CostReport cost;                ///< valid on pass
};

struct AuditReport {
  std::string dir;
  std::vector<AuditEntry> entries;  ///< sorted by filename
  std::size_t passed = 0;
  std::size_t rejected = 0;

  [[nodiscard]] bool ok() const noexcept { return rejected == 0; }

  /// One line per entry plus a counted pass/reject manifest line.
  [[nodiscard]] std::string summary() const;

  /// JSON object: {"dir", "passed", "rejected", "ok", "entries": [...]}
  /// with each pass entry embedding its cost report.
  [[nodiscard]] std::string to_json() const;
};

/// Audit every `*.irplan` under `dir` (non-recursive, the PlanStore layout).
/// A bad entry is a reject in the report, never a throw; throws
/// support::ContractViolation only when `dir` itself is missing or is not a
/// directory.  An empty or irplan-free directory audits to ok() == true.
[[nodiscard]] AuditReport audit_store(const std::string& dir,
                                      const CostOptions& options = {});

}  // namespace ir::verify
