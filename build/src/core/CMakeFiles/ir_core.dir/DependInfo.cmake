
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analyze.cpp" "src/core/CMakeFiles/ir_core.dir/analyze.cpp.o" "gcc" "src/core/CMakeFiles/ir_core.dir/analyze.cpp.o.d"
  "/root/repo/src/core/classify.cpp" "src/core/CMakeFiles/ir_core.dir/classify.cpp.o" "gcc" "src/core/CMakeFiles/ir_core.dir/classify.cpp.o.d"
  "/root/repo/src/core/general_ir.cpp" "src/core/CMakeFiles/ir_core.dir/general_ir.cpp.o" "gcc" "src/core/CMakeFiles/ir_core.dir/general_ir.cpp.o.d"
  "/root/repo/src/core/ir_problem.cpp" "src/core/CMakeFiles/ir_core.dir/ir_problem.cpp.o" "gcc" "src/core/CMakeFiles/ir_core.dir/ir_problem.cpp.o.d"
  "/root/repo/src/core/linear_ir.cpp" "src/core/CMakeFiles/ir_core.dir/linear_ir.cpp.o" "gcc" "src/core/CMakeFiles/ir_core.dir/linear_ir.cpp.o.d"
  "/root/repo/src/core/serialize.cpp" "src/core/CMakeFiles/ir_core.dir/serialize.cpp.o" "gcc" "src/core/CMakeFiles/ir_core.dir/serialize.cpp.o.d"
  "/root/repo/src/core/trace.cpp" "src/core/CMakeFiles/ir_core.dir/trace.cpp.o" "gcc" "src/core/CMakeFiles/ir_core.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/ir_support.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/ir_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ir_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/algebra/CMakeFiles/ir_algebra.dir/DependInfo.cmake"
  "/root/repo/build/src/pram/CMakeFiles/ir_pram.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
