#include "net/http_client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace ir::net {

namespace {

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (auto& ch : out) ch = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
  return out;
}

std::string_view trim(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) {
    text.remove_prefix(1);
  }
  while (!text.empty() && (text.back() == ' ' || text.back() == '\t')) {
    text.remove_suffix(1);
  }
  return text;
}

}  // namespace

const std::string* HttpClientResponse::header(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (key == name) return &value;
  }
  return nullptr;
}

HttpClient::HttpClient(std::string host, std::uint16_t port,
                       std::chrono::milliseconds timeout)
    : host_(std::move(host)), port_(port), timeout_(timeout) {}

HttpClient::~HttpClient() { close(); }

void HttpClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  residue_.clear();
}

bool HttpClient::connect() {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    error_ = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  ::timeval tv{};
  tv.tv_sec = static_cast<long>(timeout_.count() / 1000);
  tv.tv_usec = static_cast<long>((timeout_.count() % 1000) * 1000);
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  ::sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    error_ = "bad host '" + host_ + "'";
    close();
    return false;
  }
  if (::connect(fd_, reinterpret_cast<::sockaddr*>(&addr), sizeof(addr)) != 0) {
    error_ = std::string("connect: ") + std::strerror(errno);
    close();
    return false;
  }
  if (ever_connected_) ++reconnects_;
  ever_connected_ = true;
  return true;
}

bool HttpClient::send_all(std::string_view data) {
  while (!data.empty()) {
    const ::ssize_t n = ::send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
    if (n > 0) {
      data.remove_prefix(static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    error_ = std::string("send: ") + std::strerror(errno);
    return false;
  }
  return true;
}

bool HttpClient::read_more(std::string* buf) {
  char chunk[16 * 1024];
  const ::ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
  if (n > 0) {
    buf->append(chunk, static_cast<std::size_t>(n));
    return true;
  }
  if (n == 0) {
    error_ = "connection closed by server";
  } else {
    error_ = std::string("recv: ") + std::strerror(errno);
  }
  return false;
}

bool HttpClient::read_response(HttpClientResponse* out) {
  std::string buf = std::move(residue_);
  residue_.clear();
  stale_close_ = false;
  const bool fresh = buf.empty();

  // Header block.
  std::size_t header_end = buf.find("\r\n\r\n");
  while (header_end == std::string::npos) {
    if (!read_more(&buf)) {
      // Zero response bytes + peer close = the server idled out this
      // keep-alive connection between requests; the caller may retry once.
      stale_close_ = fresh && buf.empty() && error_ == "connection closed by server";
      return false;
    }
    header_end = buf.find("\r\n\r\n");
  }
  const std::string_view head = std::string_view(buf).substr(0, header_end);
  std::size_t pos = head.find("\r\n");
  const std::string_view status_line =
      pos == std::string_view::npos ? head : head.substr(0, pos);
  if (status_line.size() < 12 || status_line.substr(0, 5) != "HTTP/") {
    error_ = "malformed status line";
    return false;
  }
  out->status = std::atoi(std::string(status_line.substr(9, 3)).c_str());
  out->headers.clear();
  out->body.clear();
  out->keep_alive = status_line.substr(0, 8) != "HTTP/1.0";
  std::string_view rest =
      pos == std::string_view::npos ? std::string_view() : head.substr(pos + 2);
  while (!rest.empty()) {
    const std::size_t nl = rest.find("\r\n");
    const std::string_view line =
        nl == std::string_view::npos ? rest : rest.substr(0, nl);
    rest = nl == std::string_view::npos ? std::string_view() : rest.substr(nl + 2);
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) continue;
    out->headers.emplace_back(to_lower(line.substr(0, colon)),
                              std::string(trim(line.substr(colon + 1))));
  }
  if (const std::string* connection = out->header("connection")) {
    const std::string value = to_lower(*connection);
    if (value.find("close") != std::string::npos) out->keep_alive = false;
    if (value.find("keep-alive") != std::string::npos) out->keep_alive = true;
  }
  buf.erase(0, header_end + 4);

  // Body framing: Content-Length, chunked, or (Connection: close) to-EOF.
  const std::string* transfer = out->header("transfer-encoding");
  if (transfer != nullptr && to_lower(*transfer) == "chunked") {
    for (;;) {
      std::size_t nl = buf.find("\r\n");
      while (nl == std::string::npos) {
        if (!read_more(&buf)) return false;
        nl = buf.find("\r\n");
      }
      std::string size_line = buf.substr(0, nl);
      const std::size_t semi = size_line.find(';');
      if (semi != std::string::npos) size_line.resize(semi);
      const unsigned long long size = std::strtoull(size_line.c_str(), nullptr, 16);
      buf.erase(0, nl + 2);
      if (size == 0) {
        // Trailer section: read through the terminating CRLF.
        std::size_t end = buf.find("\r\n");
        while (end == std::string::npos) {
          if (!read_more(&buf)) return false;
          end = buf.find("\r\n");
        }
        buf.erase(0, end + 2);
        break;
      }
      while (buf.size() < size + 2) {
        if (!read_more(&buf)) return false;
      }
      out->body.append(buf, 0, static_cast<std::size_t>(size));
      buf.erase(0, static_cast<std::size_t>(size) + 2);
    }
  } else if (const std::string* length = out->header("content-length")) {
    const unsigned long long want = std::strtoull(length->c_str(), nullptr, 10);
    while (buf.size() < want) {
      if (!read_more(&buf)) return false;
    }
    out->body.assign(buf, 0, static_cast<std::size_t>(want));
    buf.erase(0, static_cast<std::size_t>(want));
  } else if (!out->keep_alive) {
    std::string tail = std::move(buf);
    buf.clear();
    while (read_more(&tail)) {
    }
    out->body = std::move(tail);  // error_ holds "closed"; that's EOF here
    error_.clear();
  }
  residue_ = std::move(buf);
  if (!out->keep_alive) close();
  return true;
}

bool HttpClient::request(
    const std::string& method, const std::string& target, const std::string& body,
    HttpClientResponse* out,
    const std::vector<std::pair<std::string, std::string>>& headers) {
  error_.clear();
  if (fd_ < 0 && !connect()) return false;

  std::string req;
  req.reserve(128 + body.size());
  req += method;
  req += ' ';
  req += target;
  req += " HTTP/1.1\r\nHost: ";
  req += host_;
  req += "\r\n";
  for (const auto& [name, value] : headers) {
    req += name;
    req += ": ";
    req += value;
    req += "\r\n";
  }
  if (!body.empty() || method == "POST" || method == "PUT") {
    req += "Content-Length: ";
    req += std::to_string(body.size());
    req += "\r\n";
  }
  req += "\r\n";
  req += body;

  if (!send_all(req)) {
    // A keep-alive peer may have idled us out between requests; one
    // reconnect-and-retry is the standard recovery.
    if (!connect() || !send_all(req)) return false;
  }
  if (!read_response(out)) {
    if (stale_close_) {
      if (!connect() || !send_all(req)) return false;
      return read_response(out);
    }
    return false;
  }
  return true;
}

}  // namespace ir::net
