// Ordinary IR on the PRAM cost simulator — the Figure-3 experiment.
//
// The paper evaluates a processor-capped version of the Section-2 algorithm
// on the SimParC simulator: Figure 3 plots simulated running time in
// "assembly instructions" against the number of processors P for n = 50,000,
// with the original sequential loop as the flat baseline, giving
// T(n, P) = (n/P)·log n for the parallel curve.
//
// These drivers express both programs against ir::pram::Machine so the same
// curves can be regenerated (bench/bench_fig3_pram.cpp).  They are also real
// executions — outputs are checked against the host solvers in tests — and
// the machine's access audit proves the schedule is CREW-clean.
#pragma once

#include <vector>

#include "algebra/concepts.hpp"
#include "core/ir_problem.hpp"
#include "pram/machine.hpp"
#include "support/contract.hpp"

namespace ir::core {

/// The original loop, run on the simulator's single-process sequential mode:
///     for i: A[g(i)] := op(A[f(i)], A[g(i)])
/// Charged per iteration: two shared reads, one ⊙, one shared write.
template <algebra::BinaryOperation Op>
std::vector<typename Op::Value> ordinary_ir_pram_original_loop(
    const Op& op, const OrdinaryIrSystem& sys, std::vector<typename Op::Value> values,
    pram::Machine& machine) {
  sys.validate();
  IR_REQUIRE(values.size() == sys.cells, "initial array must have `cells` entries");
  machine.sequential(sys.iterations(), [&](pram::Pe& pe, std::size_t i) {
    const auto left = pe.read(values[sys.f[i]]);
    const auto right = pe.read(values[sys.g[i]]);
    pe.apply_op();
    pe.write(values[sys.g[i]], op.combine(left, right));
  });
  return values;
}

/// The parallel greedy algorithm on the simulator, processor-capped to
/// machine.processors().  Returns the final array.
///
/// Step structure (each a synchronous machine step over n items):
///   1. one initialization step (load pred pointer, seed val[i]),
///   2. ⌈log₂ n⌉ concatenation rounds
///        val[i] ← val[ptr[i]] ⊙ val[i];  ptr[i] ← ptr[ptr[i]]
///      (with early termination, completed traces only pay the pointer load),
///   3. one scatter step writing the traces back to the array.
/// The pred chain itself is given to the machine as precomputed input, as the
/// paper does for its next-pointer array N.
template <algebra::BinaryOperation Op>
std::vector<typename Op::Value> ordinary_ir_pram_parallel(
    const Op& op, const OrdinaryIrSystem& sys, std::vector<typename Op::Value> initial,
    pram::Machine& machine, bool early_termination = true) {
  using Value = typename Op::Value;
  sys.validate();
  IR_REQUIRE(initial.size() == sys.cells, "initial array must have `cells` entries");
  const std::size_t n = sys.iterations();
  if (n == 0) return initial;

  std::vector<std::size_t> pred = last_writer_before(sys.g, sys.f, sys.cells);
  std::vector<std::size_t> ptr(n);
  std::vector<Value> val(n, initial[0]);

  // Step 1: seed sub-traces of length one (the paper's "initially all traces
  // are of length 1, and can be computed in parallel").
  machine.step(n, [&](pram::Pe& pe, std::size_t i) {
    const std::size_t p = pe.read(pred[i]);
    pe.write(ptr[i], p);
    if (p == kNone) {
      const Value left = pe.read(initial[sys.f[i]]);
      const Value right = pe.read(initial[sys.g[i]]);
      pe.apply_op();
      pe.write(val[i], op.combine(left, right));
    } else {
      pe.write(val[i], pe.read(initial[sys.g[i]]));
    }
  });

  // Step 2: concatenation rounds.  With early termination, completed traces
  // are compacted out of the round (the list maintenance is charged as one
  // local op per surviving item); without it, every equation is stepped each
  // round and completed traces pay their no-op pointer load.  Convergence is
  // detected on the host (the simulator is a cost model); every executed
  // round is charged in full.
  std::vector<std::size_t> active(n);
  for (std::size_t i = 0; i < n; ++i) active[i] = i;
  auto jump = [&](pram::Pe& pe, std::size_t i) {
    const std::size_t p = pe.read(ptr[i]);
    if (p == kNone) return;  // completed trace: pays only the pointer load
    const Value left = pe.read(val[p]);
    const Value right = pe.read(val[i]);
    pe.apply_op();
    pe.write(val[i], op.combine(left, right));
    pe.write(ptr[i], pe.read(ptr[p]));
  };
  while (!active.empty()) {
    if (early_termination) {
      machine.step(active.size(), [&](pram::Pe& pe, std::size_t k) {
        pe.local();  // compaction bookkeeping
        jump(pe, active[k]);
      });
    } else {
      machine.step(n, jump);
    }
    std::size_t kept = 0;
    for (std::size_t k = 0; k < active.size(); ++k) {
      if (ptr[active[k]] != kNone) active[kept++] = active[k];
    }
    active.resize(kept);
  }

  // Step 3: scatter traces into the result array (g injective => EREW).
  std::vector<Value> result = std::move(initial);
  machine.step(n, [&](pram::Pe& pe, std::size_t i) {
    pe.write(result[sys.g[i]], pe.read(val[i]));
  });
  return result;
}

}  // namespace ir::core
