// Build-flag gating: the IR_* macros must be live when IR_TELEMETRY is ON
// and expand to side-effect-free no-ops when it is OFF.  This file compiles
// (and its solver smoke test must pass) in BOTH configurations — the
// telemetry-OFF ctest run in tools/verify.sh is what exercises the other
// branch of each #if below.
// Exercises the deprecated one-shot shims (core/compat.hpp) on purpose;
// the define keeps -Werror builds green without losing the diagnostic
// elsewhere.
#define IR_COMPAT_ALLOW_DEPRECATED
#include <gtest/gtest.h>

#include "algebra/monoids.hpp"
#include "core/compat.hpp"
#include "core/ordinary_ir.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "obs/telemetry.hpp"

namespace {

using namespace ir;

TEST(TelemetryMode, CounterMacroRespectsBuildFlag) {
  const std::uint64_t before =
      obs::registry().snapshot().counter("test.mode.counter_probe");
  IR_COUNTER_ADD("test.mode.counter_probe", 5);
  const std::uint64_t after =
      obs::registry().snapshot().counter("test.mode.counter_probe");
#if IR_TELEMETRY_ENABLED
  EXPECT_EQ(after - before, 5u);
#else
  EXPECT_EQ(after, 0u);  // macro was a no-op; metric never even registered
#endif
}

TEST(TelemetryMode, SpanMacroRespectsBuildFlag) {
  obs::tracer().clear();
  obs::tracer().set_enabled(true);
  { IR_SPAN("test.mode.span_probe"); }
  obs::tracer().set_enabled(false);
  bool found = false;
  for (const auto& track : obs::tracer().drain()) {
    for (const auto& event : track.events) {
      if (std::string(event.name) == "test.mode.span_probe") found = true;
    }
  }
#if IR_TELEMETRY_ENABLED
  EXPECT_TRUE(found);
#else
  EXPECT_FALSE(found);
#endif
}

TEST(TelemetryMode, MacroArgumentsAreNotEvaluatedWhenOff) {
  int evaluations = 0;
  const auto bump = [&evaluations] { return static_cast<std::uint64_t>(++evaluations); };
  IR_COUNTER_ADD("test.mode.eval_probe", bump());
  IR_GAUGE_MAX("test.mode.eval_probe_g", bump());
  IR_HISTOGRAM("test.mode.eval_probe_h", bump());
#if IR_TELEMETRY_ENABLED
  EXPECT_EQ(evaluations, 3);
#else
  EXPECT_EQ(evaluations, 0);
#endif
}

// The disabled build must still link the obs library and solve correctly:
// a solver run straight through the instrumented hot path.
TEST(TelemetryMode, InstrumentedSolverRunsInEitherMode) {
  core::OrdinaryIrSystem sys;
  sys.cells = 9;
  for (std::size_t i = 0; i < 8; ++i) {
    sys.f.push_back(i);
    sys.g.push_back(i + 1);
  }
  std::vector<std::uint64_t> init(sys.cells, 1);
  init[0] = 3;
  const auto op = algebra::AddMonoid<std::uint64_t>{};
  core::OrdinaryIrStats stats;
  core::OrdinaryIrOptions options;
  options.stats = &stats;
  const auto out = core::ordinary_ir_parallel(op, sys, init, options);
  EXPECT_EQ(out, core::ordinary_ir_sequential(op, sys, init));
  EXPECT_GT(stats.rounds, 0u);  // OrdinaryIrStats works regardless of the flag
}

}  // namespace
