// Edge-labeled directed acyclic multigraph.
//
// This is the carrier for the paper's GIR dependence graphs (Definition 2)
// and for its CAP — Counting All Paths — operation.  Edges are directed from
// *consumer* to *producer*: an edge u -> v with label x says "the trace of u
// contains x copies of whatever v contributes".  Leaves (nodes with no
// outgoing edges) are the initial-value nodes; CAP computes, for every node,
// how many distinct paths reach each leaf — i.e. the exponent of each initial
// value in the node's trace.
//
// Labels are BigUint because path counts grow like Fibonacci numbers in the
// paper's own motivating example (A[i] := A[i-1]·A[i-2]).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "support/bigint.hpp"
#include "support/contract.hpp"

namespace ir::graph {

using NodeId = std::size_t;
using PathCount = support::BigUint;

/// One labeled edge out of a node.
struct Edge {
  NodeId to;
  PathCount label;

  friend bool operator==(const Edge&, const Edge&) = default;
};

/// Directed multigraph with BigUint edge labels.  Acyclicity is *checked on
/// demand* (verify_acyclic / topological_order), not enforced per insertion,
/// so construction stays O(1) amortized per edge.
class LabeledDag {
 public:
  /// Create a graph with `node_count` nodes and no edges.
  explicit LabeledDag(std::size_t node_count) : adjacency_(node_count) {}

  /// Number of nodes.
  [[nodiscard]] std::size_t node_count() const noexcept { return adjacency_.size(); }

  /// Number of edges (multi-edges counted individually).
  [[nodiscard]] std::size_t edge_count() const noexcept { return edge_count_; }

  /// Add an edge from -> to with multiplicity `label` (default 1).
  /// Parallel edges are allowed; label must be non-zero.
  void add_edge(NodeId from, NodeId to, PathCount label = PathCount{1});

  /// Outgoing edges of `v`.
  [[nodiscard]] const std::vector<Edge>& out_edges(NodeId v) const {
    IR_REQUIRE(v < adjacency_.size(), "node id out of range");
    return adjacency_[v];
  }

  /// True iff `v` has no outgoing edges (an initial-value "leaf" node).
  [[nodiscard]] bool is_leaf(NodeId v) const { return out_edges(v).empty(); }

  /// Merge parallel edges of every node by summing their labels
  /// (the paper's "paths addition" step, Fig. 8).
  void coalesce_parallel_edges();

  /// Topological order (consumers before producers).  Returns std::nullopt
  /// if the graph has a cycle.
  [[nodiscard]] std::optional<std::vector<NodeId>> topological_order() const;

  /// Throws ContractViolation if the graph has a cycle.
  void verify_acyclic() const;

  /// Human-readable dump ("u ->[x] v" per line) for examples and debugging.
  [[nodiscard]] std::string to_string(
      const std::vector<std::string>& node_names = {}) const;

 private:
  std::vector<std::vector<Edge>> adjacency_;
  std::size_t edge_count_ = 0;
};

}  // namespace ir::graph
