// irtool — command-line driver over the library's public API.
//
//   irtool gen {chain|fib|random} N [seed]      emit an ir-system v1 document
//   irtool analyze <file>                       print the analysis report
//   irtool classify <file>                      print the recurrence class
//   irtool solve <file> [mod] [flags]           auto-route and solve mod p
//                                               (values = 1 + cell mod 97)
//     --metrics=FILE    flat JSON metrics dump (registry snapshot + run info)
//     --trace=FILE      Chrome trace_event JSON (open in Perfetto or
//                       chrome://tracing); one track per pool worker
//     --engine=E        force the solver: auto (default), jumping, blocked,
//                       spmd, scan (these need an ordinary-shaped system:
//                       h = g, g injective; scan additionally needs the
//                       chain structure f(i) = previous iteration), or
//                       gir (CAP on anything)
//     --repeat=K        solve K times through the Solver plan cache; the
//                       schedule compiles once and is reused, and compile
//                       vs execute time is reported separately
//     --jobs=J          replay the K repeats through the batch-solve service
//                       (src/service/) with J dispatchers: requests sharing
//                       the plan key coalesce into execute_many batches, and
//                       the coalesced-batch counts are reported next to the
//                       plan-cache line (docs/service.md)
//     see docs/observability.md for the metric/span name catalog and
//     docs/solver_api.md for the plan/execute model
//   irtool trace <file> <iteration>             print a Lemma-1 trace or a
//                                               GIR exponent list
//   irtool lint <file> [--json] [--engine=E]    statically verify compiled
//                                               schedules (src/verify/): PRAM
//                                               hazard analysis, symbolic
//                                               order-preservation replay,
//                                               precondition lint.  Default
//                                               checks the auto route plus
//                                               every forced engine that fits
//                                               the system's shape; --json
//                                               emits the machine-readable
//                                               report (docs/static_analysis.md)
//     --cost            additionally run the static cost & conflict analyzer
//                       (verify/cost.hpp): work, depth, steps, footprint, and
//                       predicted bank stalls per certified plan
//     --banks=B         bank count for the conflict model (default 8)
//     --crcw            cost writes under combining-CRCW semantics (duplicate
//                       writes to one cell coalesce); default is CREW
//   irtool audit <store-dir> [--json] [--cost-flags]
//                                               statically verify AND cost
//                                               every .irplan in a plan store
//                                               (verify/audit.hpp): each entry
//                                               gets a PASS/REJECT verdict with
//                                               a reason, plus a counted
//                                               manifest; exit 0 only when the
//                                               whole store is clean
//   irtool dot <file>                           dependence graph as Graphviz
//   irtool lower <dsl-file>                     loop DSL -> ir-system text
//   irtool interchange <dsl-file> <a> <b>       swap nest levels a and b
//                                               (legality-checked), print DSL
//   irtool plan export <file> <store-dir> [--engine=E]
//                                               compile and persist the plan
//                                               into an on-disk plan store
//                                               (docs/plan_store.md)
//   irtool plan import <plan-file> [<store-dir>]
//                                               validate + statically verify a
//                                               plan file; with a store dir,
//                                               install it under its key
//   irtool plan info <plan-file>                header facts and section map
//
// ir-system files use core/serialize.hpp's format; DSL files use
// frontend/parser.hpp's; "-" reads stdin.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <future>
#include <iostream>
#include <sstream>
#include <string>

#include "algebra/monoids.hpp"
#include "core/analyze.hpp"
#include "core/general_ir.hpp"
#include "core/plan_io.hpp"
#include "core/serialize.hpp"
#include "core/solver.hpp"
#include "core/trace.hpp"
#include "frontend/lower.hpp"
#include "frontend/parser.hpp"
#include "frontend/transform.hpp"
#include "graph/dot.hpp"
#include "obs/metrics_export.hpp"
#include "obs/span.hpp"
#include "obs/trace_export.hpp"
#include "service/server.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"
#include "verify/audit.hpp"
#include "verify/cost.hpp"
#include "verify/verify.hpp"

namespace {

using namespace ir;

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  irtool gen {chain|fib|random} N [seed]\n"
               "  irtool analyze <file>\n"
               "  irtool classify <file>\n"
               "  irtool solve <file> [mod] [--metrics=FILE] [--trace=FILE]\n"
               "               [--engine={auto|jumping|blocked|spmd|scan|gir}]\n"
               "               [--repeat=K]\n"
               "               [--jobs=J]\n"
               "  irtool trace <file> <iteration>\n"
               "  irtool lint <file> [--json] [--cost] [--banks=B] [--crcw]\n"
               "              [--engine={all|auto|jumping|blocked|spmd|scan|gir|"
               "elementwise}]\n"
               "  irtool audit <store-dir> [--json] [--banks=B] [--crcw]\n"
               "  irtool dot <file>\n"
               "  irtool lower <dsl-file>\n"
               "  irtool interchange <dsl-file> <a> <b>\n"
               "  irtool plan export <file> <store-dir>\n"
               "              [--engine={auto|jumping|blocked|spmd|scan|gir}]\n"
               "  irtool plan import <plan-file> [<store-dir>]\n"
               "  irtool plan info <plan-file>\n"
               "\n"
               "lint exit codes:  0 = every checked plan certified;\n"
               "                  1 = at least one violation (or runtime error);\n"
               "                  2 = usage error\n"
               "audit exit codes: 0 = every store entry verified and costed;\n"
               "                  1 = at least one entry rejected;\n"
               "                  2 = usage or I/O error (store dir missing)\n");
  return 2;
}

std::string read_all(const std::string& path) {
  if (path == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    return buffer.str();
  }
  std::ifstream in(path);
  IR_REQUIRE(in.good(), "cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

core::GeneralIrSystem load(const std::string& path) {
  return core::system_from_text(read_all(path));
}

int cmd_gen(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string kind = argv[0];
  const std::size_t n = static_cast<std::size_t>(std::strtoull(argv[1], nullptr, 10));
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1997;
  core::GeneralIrSystem sys;
  if (kind == "chain") {
    sys.cells = n + 1;
    for (std::size_t i = 0; i < n; ++i) {
      sys.f.push_back(i);
      sys.g.push_back(i + 1);
      sys.h.push_back(i + 1);
    }
  } else if (kind == "fib") {
    sys.cells = n + 2;
    for (std::size_t i = 2; i < n + 2; ++i) {
      sys.f.push_back(i - 1);
      sys.g.push_back(i);
      sys.h.push_back(i - 2);
    }
  } else if (kind == "random") {
    support::SplitMix64 rng(seed);
    sys.cells = n + n / 2 + 2;
    for (std::size_t i = 0; i < n; ++i) {
      sys.g.push_back(rng.below(sys.cells));
      auto pick = [&]() {
        if (i > 0 && rng.chance(0.7)) return sys.g[rng.below(i)];
        return rng.below(sys.cells);
      };
      sys.f.push_back(pick());
      sys.h.push_back(pick());
    }
  } else {
    return usage();
  }
  std::fputs(core::to_text(sys).c_str(), stdout);
  return 0;
}

int cmd_analyze(const std::string& path) {
  const auto sys = load(path);
  std::fputs(core::analyze(sys).to_string().c_str(), stdout);
  return 0;
}

int cmd_classify(const std::string& path) {
  const auto sys = load(path);
  std::printf("%s\n", core::to_string(core::classify(sys)).c_str());
  return 0;
}

struct SolveFlags {
  std::string path;
  std::uint64_t mod = 1'000'000'007ull;
  std::string metrics_file;  ///< --metrics=FILE: flat JSON registry dump
  std::string trace_file;    ///< --trace=FILE: Chrome trace_event JSON
  std::string engine = "auto";
  std::size_t repeat = 1;  ///< --repeat=K: K solves through the plan cache
  std::size_t jobs = 0;    ///< --jobs=J: J service dispatchers (0 = no service)
};

int cmd_solve(const SolveFlags& flags) {
  const auto sys = load(flags.path);
  algebra::ModMulMonoid op(flags.mod);
  std::vector<std::uint64_t> init(sys.cells);
  for (std::size_t c = 0; c < sys.cells; ++c) init[c] = 1 + c % 97;
  IR_REQUIRE(flags.repeat >= 1, "--repeat needs K >= 1");

  const bool tracing = !flags.trace_file.empty();
  if (tracing) {
    obs::set_thread_name("irtool-main");
    obs::tracer().set_enabled(true);
  }

  core::EngineChoice engine = core::EngineChoice::kAuto;
  if (flags.engine == "jumping") {
    engine = core::EngineChoice::kJumping;
  } else if (flags.engine == "blocked") {
    engine = core::EngineChoice::kBlocked;
  } else if (flags.engine == "spmd") {
    engine = core::EngineChoice::kSpmd;
  } else if (flags.engine == "scan") {
    engine = core::EngineChoice::kScan;
  } else if (flags.engine == "gir") {
    engine = core::EngineChoice::kGeneralCap;
  } else if (flags.engine != "auto") {
    return usage();
  }
  if (engine == core::EngineChoice::kJumping || engine == core::EngineChoice::kBlocked ||
      engine == core::EngineChoice::kSpmd || engine == core::EngineChoice::kScan) {
    // Friendlier message than compile_plan's for the common shape mistake.
    IR_REQUIRE(sys.h == sys.g,
               "--engine=" + flags.engine + " needs an ordinary-shaped system (h = g)");
  }

  std::string route;
  core::OrdinaryIrStats ord_stats;
  bool have_ord_stats = false;
  std::vector<std::uint64_t> out;
  std::string plan_engine;
  double compile_seconds = 0.0, execute_seconds = 0.0;
  core::Solver solver;
  service::ServiceStats svc;
  const bool use_service = flags.jobs > 0;
  if (use_service) {
    // --jobs=J: replay the repeats through the batch-solve service instead
    // of a sequential compile/execute loop.  All K requests share one plan
    // key, so queued repeats coalesce into execute_many batches; the
    // "service:" line below shows how many batches the K solves actually
    // took.  Server scope: dispatcher threads retire before the trace flush.
    service::ServiceConfig config;
    config.dispatchers = flags.jobs;
    service::Server<algebra::ModMulMonoid> server(op, config);
    support::Stopwatch watch;
    watch.lap();
    std::vector<std::future<service::Server<algebra::ModMulMonoid>::Response>> futures;
    futures.reserve(flags.repeat);
    for (std::size_t rep = 0; rep < flags.repeat; ++rep) {
      service::Server<algebra::ModMulMonoid>::Request request;
      request.sys = sys;
      request.initial = init;
      request.plan.engine = engine;
      futures.push_back(server.submit_async(std::move(request)));
    }
    server.drain();
    execute_seconds = watch.lap();  // the service overlaps compile + execute
    for (auto& future : futures) {
      auto response = future.get();
      IR_REQUIRE(response.ok(), "service solve failed: " + response.error);
      plan_engine = response.info.engine;
      out = std::move(response.values);
    }
    svc = server.stats();
    route = engine == core::EngineChoice::kAuto ? plan_engine + " (service)"
                                                : flags.engine + " (forced)";
  } else {
    // Pool scope: destroying the pool retires the workers' span tracks, so
    // the trace/metrics flush below sees every worker's data.
    parallel::ThreadPool pool(parallel::ThreadPool::default_threads());
    core::PlanOptions plan_options;
    plan_options.engine = engine;
    plan_options.pool = &pool;
    core::ExecOptions exec;
    exec.pool = &pool;
    exec.workers = pool.size();  // used only by the SPMD executor
    if (engine == core::EngineChoice::kJumping || engine == core::EngineChoice::kSpmd ||
        engine == core::EngineChoice::kScan) {
      exec.ordinary_stats = &ord_stats;
      have_ord_stats = true;
    }
    // Every rep goes compile-then-execute; from rep 2 on the compile is a
    // plan-cache hit, so the split shows exactly what reuse saves.
    std::shared_ptr<const core::Plan> plan;
    support::Stopwatch watch;
    for (std::size_t rep = 0; rep < flags.repeat; ++rep) {
      watch.lap();
      plan = solver.compile(sys, plan_options);
      compile_seconds += watch.lap();
      out = core::execute_plan(*plan, op, init, exec);
      execute_seconds += watch.lap();
    }
    route = engine == core::EngineChoice::kAuto ? core::to_string(plan->report.route)
                                                : flags.engine + " (forced)";
    plan_engine = core::to_string(plan->engine);
  }
  const double solve_seconds = compile_seconds + execute_seconds;
  if (tracing) obs::tracer().set_enabled(false);

  const auto check = core::general_ir_sequential(op, sys, init);

  std::printf("route: %s\n", route.c_str());
  std::printf("plan: engine=%s compile_s=%.6f execute_s=%.6f repeats=%zu\n",
              plan_engine.c_str(), compile_seconds, execute_seconds, flags.repeat);
  if (use_service) {
    std::printf("plan cache: hits=%llu misses=%llu compiles=%llu\n",
                static_cast<unsigned long long>(svc.plan_cache_hits),
                static_cast<unsigned long long>(svc.plan_cache_misses),
                static_cast<unsigned long long>(svc.plan_compiles));
    std::printf("service: jobs=%zu batches=%llu coalesced_requests=%llu "
                "peak_batch=%llu\n",
                flags.jobs, static_cast<unsigned long long>(svc.batches),
                static_cast<unsigned long long>(svc.coalesced_requests),
                static_cast<unsigned long long>(svc.peak_batch));
  } else {
    std::printf("plan cache: hits=%zu misses=%zu\n", solver.plan_cache().hits(),
                solver.plan_cache().misses());
  }
  std::printf("first cells:");
  for (std::size_t c = 0; c < std::min<std::size_t>(8, out.size()); ++c) {
    std::printf(" %llu", static_cast<unsigned long long>(out[c]));
  }
  std::uint64_t checksum = 0;
  for (const auto v : out) checksum ^= v + 0x9e3779b9 + (checksum << 6) + (checksum >> 2);
  std::printf("\nchecksum: %llu\n", static_cast<unsigned long long>(checksum));
  if (have_ord_stats) {
    std::printf("stats: rounds=%zu op_applications=%zu peak_active=%zu\n",
                ord_stats.rounds, ord_stats.op_applications, ord_stats.peak_active);
  }
  const bool matches = out == check;
  std::printf("matches sequential execution: %s\n", matches ? "yes" : "NO");

  if (!flags.metrics_file.empty()) {
    obs::ExtraFields extra = {
        {"command", obs::json_quote("solve")},
        {"input", obs::json_quote(flags.path)},
        {"route", obs::json_quote(route)},
        {"plan_engine", obs::json_quote(plan_engine)},
        {"iterations", std::to_string(sys.iterations())},
        {"cells", std::to_string(sys.cells)},
        {"mod", std::to_string(flags.mod)},
        {"repeat", std::to_string(flags.repeat)},
        {"jobs", std::to_string(flags.jobs)},
        {"solve_seconds", std::to_string(solve_seconds)},
        {"compile_seconds", std::to_string(compile_seconds)},
        {"execute_seconds", std::to_string(execute_seconds)},
        {"plan_cache_hits", std::to_string(use_service ? svc.plan_cache_hits
                                                       : solver.plan_cache().hits())},
        {"plan_cache_misses",
         std::to_string(use_service ? svc.plan_cache_misses
                                    : solver.plan_cache().misses())},
        {"service_batches", std::to_string(svc.batches)},
        {"service_coalesced_requests", std::to_string(svc.coalesced_requests)},
        {"matches_sequential", matches ? "true" : "false"},
    };
    obs::write_metrics_file(flags.metrics_file, extra);
    std::fprintf(stderr, "metrics written to %s\n", flags.metrics_file.c_str());
  }
  if (tracing) {
    obs::write_chrome_trace_file(flags.trace_file);
    std::fprintf(stderr, "trace written to %s (open in Perfetto or chrome://tracing)\n",
                 flags.trace_file.c_str());
  }
  return matches ? 0 : 1;
}

struct LintFlags {
  std::string path;
  std::string engine = "all";  ///< all | auto | one forced engine
  bool json = false;
  bool cost = false;  ///< run the static cost & conflict analyzer per plan
  verify::CostOptions cost_options;
};

/// Re-indent a multi-line JSON fragment so it nests under `indent` spaces.
std::string indent_json(std::string fragment, const std::string& indent) {
  if (!fragment.empty() && fragment.back() == '\n') fragment.pop_back();
  std::string out;
  for (const char c : fragment) {
    out += c;
    if (c == '\n') out += indent;
  }
  return out;
}

/// Statically verify the compiled schedule(s) of one ir-system file.
/// "all" checks the auto route plus every forced engine whose shape
/// preconditions the system meets (the shape gate mirrors compile_plan's own
/// contract — lint reports what it skipped and why).
int cmd_lint(const LintFlags& flags) {
  const auto sys = load(flags.path);
  const auto report = core::analyze(sys);
  const bool ordinary_fits = [&] {
    if (sys.h != sys.g || report.repeated_writes != 0) return false;
    return true;
  }();
  // The scan fast route additionally needs the chain structure: every
  // iteration folds the previous one (or starts a fresh segment).
  const bool chain_fits = ordinary_fits && [&] {
    const auto pred = core::last_writer_before(sys.g, sys.f, sys.cells);
    for (std::size_t i = 0; i < pred.size(); ++i) {
      if (pred[i] != core::kNone && pred[i] != i - 1) return false;
    }
    return true;
  }();

  struct Leg {
    std::string label;
    core::EngineChoice choice;
  };
  std::vector<Leg> legs;
  auto want = [&](const std::string& name) {
    return flags.engine == "all" || flags.engine == name;
  };
  if (want("auto")) legs.push_back({"auto", core::EngineChoice::kAuto});
  if (want("gir")) legs.push_back({"gir", core::EngineChoice::kGeneralCap});
  if (ordinary_fits) {
    if (want("jumping")) legs.push_back({"jumping", core::EngineChoice::kJumping});
    if (want("blocked")) legs.push_back({"blocked", core::EngineChoice::kBlocked});
    if (want("spmd")) legs.push_back({"spmd", core::EngineChoice::kSpmd});
    if (chain_fits && want("scan")) legs.push_back({"scan", core::EngineChoice::kScan});
  }
  if (report.dependences == 0 && want("elementwise")) {
    legs.push_back({"elementwise", core::EngineChoice::kElementwise});
  }
  if (legs.empty()) {
    std::fprintf(stderr,
                 "irtool lint: engine '%s' does not fit this system's shape "
                 "(ordinary engines need h = g with injective g; scan further "
                 "needs a chain-structured system; elementwise needs a "
                 "recurrence-free system)\n",
                 flags.engine.c_str());
    return 1;
  }

  std::size_t certified = 0;
  std::string json = "{\n  \"file\": " + obs::json_quote(flags.path) +
                     ",\n  \"plans\": [";
  for (std::size_t leg = 0; leg < legs.size(); ++leg) {
    core::PlanOptions plan_options;
    plan_options.engine = legs[leg].choice;
    const core::Plan plan = core::compile_plan(sys, plan_options);
    const verify::VerifyReport verdict = verify::verify_plan(plan, sys);
    if (verdict.ok()) ++certified;
    if (flags.json) {
      std::string entry = verdict.to_json();
      // Inline the per-plan report under its requested-engine label.
      std::string head = "\"requested\": " + obs::json_quote(legs[leg].label) +
                         ", \"engine\": " + obs::json_quote(core::to_string(plan.engine)) +
                         ", \"chain_structure\": " + (plan.chain ? "true" : "false") +
                         ", \"schedule\": " + obs::json_quote(plan.describe()) + ",";
      if (flags.cost) {
        const verify::CostReport cost = verify::cost_plan(plan, flags.cost_options);
        head += "\n\"cost\": " + indent_json(cost.to_json(), "") + ",";
      }
      entry.insert(entry.find('{') + 1, head);
      json += (leg == 0 ? "\n" : ",\n") + entry;
    } else {
      std::printf("%-12s %s\n             (%s)\n", legs[leg].label.c_str(),
                  verdict.summary().c_str(), plan.describe().c_str());
      if (flags.cost) {
        const verify::CostReport cost = verify::cost_plan(plan, flags.cost_options);
        std::printf("             cost: %s\n", cost.summary().c_str());
      }
      for (const auto& violation : verdict.violations) {
        std::printf("             [%s] %s: %s\n",
                    verify::to_string(violation.family).c_str(),
                    violation.code.c_str(), violation.message.c_str());
      }
    }
  }
  if (flags.json) {
    json += "  ],\n  \"certified\": " + std::to_string(certified) +
            ",\n  \"checked\": " + std::to_string(legs.size()) +
            ",\n  \"ok\": " + (certified == legs.size() ? "true" : "false") + "\n}\n";
    std::fputs(json.c_str(), stdout);
  } else {
    std::printf("lint: %zu/%zu plans certified\n", certified, legs.size());
  }
  return certified == legs.size() ? 0 : 1;
}

/// Statically verify and cost every .irplan in a plan-store directory.
/// Exit codes: 0 = every entry passed, 1 = at least one reject, 2 = the
/// store directory itself is unusable (missing / not a directory).
int cmd_audit(const std::string& store_dir, bool json,
              const verify::CostOptions& options) {
  verify::AuditReport report;
  try {
    report = verify::audit_store(store_dir, options);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "irtool audit: %s\n", error.what());
    return 2;
  }
  if (json) {
    std::fputs(report.to_json().c_str(), stdout);
  } else {
    std::printf("%s\n", report.summary().c_str());
  }
  return report.ok() ? 0 : 1;
}

int cmd_trace(const std::string& path, std::size_t iteration) {
  const auto sys = load(path);
  if (sys.h == sys.g) {
    core::OrdinaryIrSystem ord;
    ord.cells = sys.cells;
    ord.f = sys.f;
    ord.g = sys.g;
    ord.validate();
    std::printf("A'[%zu] = %s\n", sys.g[iteration],
                core::render_trace(core::ordinary_trace(ord, iteration)).c_str());
    return 0;
  }
  const auto exponents = core::general_ir_exponents(sys);
  IR_REQUIRE(iteration < exponents.size(), "iteration out of range");
  std::printf("A'[%zu] =", sys.g[iteration]);
  for (const auto& [cell, count] : exponents[iteration]) {
    std::printf(" A0[%zu]^%s", cell, count.to_string().c_str());
  }
  std::printf("\n");
  return 0;
}

int cmd_dot(const std::string& path) {
  const auto sys = load(path);
  const auto graph = core::build_dependence_graph(sys);
  std::fputs(graph::to_dot(graph.dag, graph.node_names(sys)).c_str(), stdout);
  return 0;
}

int cmd_lower(const std::string& path) {
  const auto program = frontend::parse_program(read_all(path));
  const auto lowered = frontend::lower(program);
  std::fputs(core::to_text(lowered.system).c_str(), stdout);
  return 0;
}

int cmd_interchange(const std::string& path, std::size_t a, std::size_t b) {
  const auto program = frontend::parse_program(read_all(path));
  const auto swapped = frontend::interchange(program, a, b);
  const auto check = frontend::check_dependence_preservation(frontend::lower(program),
                                                             frontend::lower(swapped));
  if (!check.preserved) {
    std::fprintf(stderr, "irtool: ILLEGAL interchange: %s\n", check.violation.c_str());
    return 1;
  }
  std::fprintf(stderr, "# interchange legal (%zu dependence pairs checked)\n",
               check.pairs_checked);
  std::fputs(swapped.to_string().c_str(), stdout);
  return 0;
}

void print_plan_header(const core::PlanFileInfo& info) {
  std::printf("version      %u\n", info.version);
  std::printf("engine       %s%s\n", core::to_string(info.engine).c_str(),
              info.chain ? " (chain)" : "");
  std::printf("fingerprint  %016llx\n",
              static_cast<unsigned long long>(info.fingerprint));
  std::printf("store-key    %016llx\n",
              static_cast<unsigned long long>(info.store_key));
  std::printf("check        bytes=%llu hash2=%016llx\n",
              static_cast<unsigned long long>(info.check.bytes),
              static_cast<unsigned long long>(info.check.hash2));
  std::printf("cells        %llu\n", static_cast<unsigned long long>(info.cells));
  std::printf("iterations   %llu\n",
              static_cast<unsigned long long>(info.iterations));
  std::printf("file-bytes   %llu\n",
              static_cast<unsigned long long>(info.file_bytes));
  std::printf("checksum     %016llx\n",
              static_cast<unsigned long long>(info.checksum));
}

int cmd_plan(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string verb = argv[0];

  if (verb == "export") {
    // export <system-file> <store-dir> [--engine=E]: compile and persist.
    std::string path, store_dir, engine_name = "auto";
    for (int a = 1; a < argc; ++a) {
      const std::string arg = argv[a];
      if (arg.rfind("--engine=", 0) == 0) {
        engine_name = arg.substr(9);
      } else if (path.empty()) {
        path = arg;
      } else if (store_dir.empty()) {
        store_dir = arg;
      } else {
        return usage();
      }
    }
    if (path.empty() || store_dir.empty()) return usage();
    core::EngineChoice engine = core::EngineChoice::kAuto;
    if (engine_name == "jumping") {
      engine = core::EngineChoice::kJumping;
    } else if (engine_name == "blocked") {
      engine = core::EngineChoice::kBlocked;
    } else if (engine_name == "spmd") {
      engine = core::EngineChoice::kSpmd;
    } else if (engine_name == "scan") {
      engine = core::EngineChoice::kScan;
    } else if (engine_name == "gir") {
      engine = core::EngineChoice::kGeneralCap;
    } else if (engine_name != "auto") {
      return usage();
    }

    const auto sys = load(path);
    core::PlanOptions options;
    options.engine = engine;
    const core::Plan plan = core::compile_plan(sys, options);
    const core::PlanKeyWords key_words = core::plan_key_words(sys, options);
    core::PlanStore store(store_dir);
    const std::string entry = store.put(key_words, plan, sys);
    std::fprintf(stderr, "# exported %s plan (%zu cells, %zu iterations)\n",
                 core::to_string(plan.engine).c_str(), plan.cells,
                 plan.iterations);
    std::printf("%s\n", entry.c_str());
    return 0;
  }

  if (verb == "import") {
    // import <plan-file> [<store-dir>]: full validation + static verification
    // (the same gate PlanStore::get applies); with a store dir, install the
    // verified plan under its recorded key.
    if (argc < 2) return usage();
    const std::string path = argv[1];
    const std::string store_dir = argc > 2 ? argv[2] : "";
    core::LoadedPlan loaded;
    try {
      loaded = core::load_plan_file(path);  // verify=true by default
    } catch (const std::exception& error) {
      std::fprintf(stderr, "irtool: REJECTED %s: %s\n", path.c_str(), error.what());
      return 1;
    }
    std::printf("verified     yes (header + checksum + static verifier)\n");
    print_plan_header(core::plan_file_info(path));
    if (!store_dir.empty()) {
      core::PlanStore store(store_dir);
      const std::string entry =
          store.put(loaded.key_words, *loaded.plan, loaded.system);
      std::printf("installed    %s\n", entry.c_str());
    }
    return 0;
  }

  if (verb == "info") {
    // info <plan-file>: header facts + section map, tables untouched.
    if (argc < 2) return usage();
    const core::PlanFileInfo info = core::plan_file_info(argv[1]);
    print_plan_header(info);
    std::printf("sections     %zu\n", info.sections.size());
    for (const auto& section : info.sections) {
      std::printf("  %-18s offset=%-8llu bytes=%llu\n", section.name,
                  static_cast<unsigned long long>(section.offset),
                  static_cast<unsigned long long>(section.bytes));
    }
    return 0;
  }

  return usage();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    if (command == "gen") return cmd_gen(argc - 2, argv + 2);
    if (argc < 3) return usage();
    if (command == "analyze") return cmd_analyze(argv[2]);
    if (command == "classify") return cmd_classify(argv[2]);
    if (command == "solve") {
      SolveFlags flags;
      bool have_path = false, have_mod = false;
      for (int a = 2; a < argc; ++a) {
        const std::string arg = argv[a];
        if (arg.rfind("--metrics=", 0) == 0) {
          flags.metrics_file = arg.substr(10);
        } else if (arg.rfind("--trace=", 0) == 0) {
          flags.trace_file = arg.substr(8);
        } else if (arg.rfind("--engine=", 0) == 0) {
          flags.engine = arg.substr(9);
        } else if (arg.rfind("--repeat=", 0) == 0) {
          flags.repeat = std::strtoull(arg.c_str() + 9, nullptr, 10);
        } else if (arg.rfind("--jobs=", 0) == 0) {
          flags.jobs = std::strtoull(arg.c_str() + 7, nullptr, 10);
        } else if (!have_path) {
          flags.path = arg;
          have_path = true;
        } else if (!have_mod) {
          flags.mod = std::strtoull(arg.c_str(), nullptr, 10);
          have_mod = true;
        } else {
          return usage();
        }
      }
      if (!have_path) return usage();
      return cmd_solve(flags);
    }
    if (command == "trace") {
      if (argc < 4) return usage();
      return cmd_trace(argv[2], std::strtoull(argv[3], nullptr, 10));
    }
    if (command == "lint") {
      LintFlags flags;
      bool have_path = false;
      for (int a = 2; a < argc; ++a) {
        const std::string arg = argv[a];
        if (arg == "--json") {
          flags.json = true;
        } else if (arg == "--cost") {
          flags.cost = true;
        } else if (arg == "--crcw") {
          flags.cost = true;
          flags.cost_options.mode = verify::BankMode::kCrcw;
        } else if (arg.rfind("--banks=", 0) == 0) {
          flags.cost = true;
          flags.cost_options.banks = std::strtoull(arg.c_str() + 8, nullptr, 10);
          if (flags.cost_options.banks == 0) return usage();
        } else if (arg.rfind("--engine=", 0) == 0) {
          flags.engine = arg.substr(9);
        } else if (!have_path) {
          flags.path = arg;
          have_path = true;
        } else {
          return usage();
        }
      }
      if (!have_path) return usage();
      const bool known_engine =
          flags.engine == "all" || flags.engine == "auto" ||
          flags.engine == "jumping" || flags.engine == "blocked" ||
          flags.engine == "spmd" || flags.engine == "scan" ||
          flags.engine == "gir" || flags.engine == "elementwise";
      if (!known_engine) return usage();
      return cmd_lint(flags);
    }
    if (command == "audit") {
      std::string store_dir;
      bool json = false;
      verify::CostOptions options;
      for (int a = 2; a < argc; ++a) {
        const std::string arg = argv[a];
        if (arg == "--json") {
          json = true;
        } else if (arg == "--crcw") {
          options.mode = verify::BankMode::kCrcw;
        } else if (arg.rfind("--banks=", 0) == 0) {
          options.banks = std::strtoull(arg.c_str() + 8, nullptr, 10);
          if (options.banks == 0) return usage();
        } else if (store_dir.empty()) {
          store_dir = arg;
        } else {
          return usage();
        }
      }
      if (store_dir.empty()) return usage();
      return cmd_audit(store_dir, json, options);
    }
    if (command == "plan") return cmd_plan(argc - 2, argv + 2);
    if (command == "dot") return cmd_dot(argv[2]);
    if (command == "lower") return cmd_lower(argv[2]);
    if (command == "interchange") {
      if (argc < 5) return usage();
      return cmd_interchange(argv[2], std::strtoull(argv[3], nullptr, 10),
                             std::strtoull(argv[4], nullptr, 10));
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "irtool: %s\n", error.what());
    return 1;
  }
  return usage();
}
