#include "core/hash_ring.hpp"

#include <algorithm>

namespace ir::core {

HashRing::HashRing(std::size_t shards, std::size_t vnodes)
    : shards_(std::max<std::size_t>(1, shards)) {
  vnodes = std::max<std::size_t>(1, vnodes);
  ring_.reserve(shards_ * vnodes);
  for (std::size_t shard = 0; shard < shards_; ++shard) {
    for (std::size_t v = 0; v < vnodes; ++v) {
      // Two mix rounds decorrelate the (shard, vnode) lattice; one round of
      // a counter leaves visible stripes.
      const std::uint64_t position =
          mix64(mix64(static_cast<std::uint64_t>(shard) << 32 | v));
      ring_.push_back({position, static_cast<std::uint32_t>(shard)});
    }
  }
  std::sort(ring_.begin(), ring_.end(), [](const Point& a, const Point& b) {
    return a.position < b.position || (a.position == b.position && a.shard < b.shard);
  });
}

std::size_t HashRing::shard_for(std::uint64_t key) const noexcept {
  const std::uint64_t position = mix64(key);
  const auto it = std::lower_bound(
      ring_.begin(), ring_.end(), position,
      [](const Point& p, std::uint64_t pos) { return p.position < pos; });
  // Past the last point wraps to the ring's first point.
  return it != ring_.end() ? it->shard : ring_.front().shard;
}

}  // namespace ir::core
