file(REMOVE_RECURSE
  "libir_core.a"
)
