#include "graph/cap.hpp"

#include <algorithm>
#include <bit>
#include <unordered_map>

#include "parallel/parallel_for.hpp"

namespace ir::graph {

namespace {

/// Merge duplicate targets in an edge list by summing labels, in place.
void coalesce(std::vector<Edge>& edges) {
  if (edges.size() <= 1) return;
  std::unordered_map<NodeId, std::size_t> slot;
  std::vector<Edge> merged;
  merged.reserve(edges.size());
  for (auto& e : edges) {
    auto [it, inserted] = slot.try_emplace(e.to, merged.size());
    if (inserted) {
      merged.push_back(std::move(e));
    } else {
      merged[it->second].label += e.label;
    }
  }
  edges = std::move(merged);
}

/// One CAP round for one node: every edge to a non-leaf k is replaced by the
/// composites through k; edges to leaves survive unchanged.
std::vector<Edge> substitute_node(const std::vector<std::vector<Edge>>& adjacency,
                                  const std::vector<bool>& is_leaf, NodeId v) {
  std::vector<Edge> next;
  next.reserve(adjacency[v].size());
  for (const auto& edge : adjacency[v]) {
    if (is_leaf[edge.to]) {
      next.push_back(edge);
      continue;
    }
    for (const auto& hop : adjacency[edge.to]) {
      next.push_back(Edge{hop.to, edge.label * hop.label});
    }
  }
  return next;
}

}  // namespace

CapResult cap_closure(const LabeledDag& graph, const CapOptions& options) {
  graph.verify_acyclic();
  const std::size_t n = graph.node_count();
  IR_REQUIRE(options.active.empty() || options.active.size() == n,
             "active mask must cover every node");
  const bool restricted = !options.active.empty();
  auto is_active = [&](NodeId v) { return !restricted || options.active[v]; };
  if (restricted) {
    for (NodeId v = 0; v < n; ++v) {
      if (!options.active[v]) continue;
      for (const auto& e : graph.out_edges(v)) {
        IR_REQUIRE(options.active[e.to],
                   "active mask must be closed under reachability");
      }
    }
  }

  std::vector<bool> is_leaf(n);
  std::vector<std::vector<Edge>> adjacency(n);
  std::size_t edges_now = 0;
  for (NodeId v = 0; v < n; ++v) {
    is_leaf[v] = graph.is_leaf(v);
    if (is_active(v)) adjacency[v] = graph.out_edges(v);
    edges_now += adjacency[v].size();
  }

  CapResult result;
  result.peak_edges = edges_now;

  // Upper bound on rounds: path length halves per round, paths have at most
  // n edges, plus slack for the final no-op verification round.
  const std::size_t max_rounds = std::bit_width(n) + 2;

  for (;;) {
    bool done = true;
    for (NodeId v = 0; v < n && done; ++v) {
      for (const auto& e : adjacency[v]) {
        if (!is_leaf[e.to]) {
          done = false;
          break;
        }
      }
    }
    if (done) break;
    IR_INVARIANT(result.rounds < max_rounds, "CAP failed to converge (graph bug)");

    std::vector<std::vector<Edge>> next(n);
    auto relax = [&](std::size_t v) {
      next[v] = substitute_node(adjacency, is_leaf, v);
      if (options.coalesce_each_round) coalesce(next[v]);
    };
    if (options.pool != nullptr) {
      parallel::parallel_for(*options.pool, n, relax);
    } else {
      for (NodeId v = 0; v < n; ++v) relax(v);
    }
    adjacency = std::move(next);

    edges_now = 0;
    for (const auto& edges : adjacency) edges_now += edges.size();
    result.peak_edges = std::max(result.peak_edges, edges_now);
    ++result.rounds;
  }

  if (!options.coalesce_each_round) {
    for (auto& edges : adjacency) coalesce(edges);
  }
  for (NodeId v = 0; v < n; ++v) {
    if (is_leaf[v]) adjacency[v] = {Edge{v, PathCount{1}}};
  }
  result.counts = std::move(adjacency);
  return result;
}

std::vector<std::vector<Edge>> path_counts_reference(const LabeledDag& graph) {
  const auto order = graph.topological_order();
  IR_REQUIRE(order.has_value(), "graph contains a cycle");
  const std::size_t n = graph.node_count();
  std::vector<std::vector<Edge>> counts(n);

  // Producers come last in a consumer->producer topological order, so walk
  // it backwards: every node's successors are finished when it is reached.
  for (auto it = order->rbegin(); it != order->rend(); ++it) {
    const NodeId v = *it;
    if (graph.is_leaf(v)) {
      counts[v] = {Edge{v, PathCount{1}}};
      continue;
    }
    std::vector<Edge> acc;
    for (const auto& edge : graph.out_edges(v)) {
      for (const auto& leaf_count : counts[edge.to]) {
        acc.push_back(Edge{leaf_count.to, edge.label * leaf_count.label});
      }
    }
    coalesce(acc);
    counts[v] = std::move(acc);
  }
  return counts;
}

namespace {
PathCount count_paths_rec(const LabeledDag& graph, NodeId from, NodeId to) {
  if (from == to) return PathCount{1};
  PathCount total;
  for (const auto& edge : graph.out_edges(from)) {
    total += edge.label * count_paths_rec(graph, edge.to, to);
  }
  return total;
}
}  // namespace

PathCount count_paths_exhaustive(const LabeledDag& graph, NodeId from, NodeId to) {
  graph.verify_acyclic();
  return count_paths_rec(graph, from, to);
}

}  // namespace ir::graph
