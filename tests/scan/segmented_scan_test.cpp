#include "scan/segmented_scan.hpp"

#include <gtest/gtest.h>

#include "algebra/monoids.hpp"
#include "support/rng.hpp"

namespace ir::scan {
namespace {

using algebra::AddMonoid;
using algebra::ConcatMonoid;

/// Reference: per-segment sequential scan.
template <typename Op>
std::vector<typename Op::Value> reference(const Op& op,
                                          std::vector<typename Op::Value> data,
                                          const std::vector<bool>& heads) {
  for (std::size_t i = 1; i < data.size(); ++i) {
    if (!heads[i]) data[i] = op.combine(data[i - 1], data[i]);
  }
  return data;
}

TEST(SegmentedScanTest, HandExample) {
  std::vector<std::uint64_t> data{1, 2, 3, 4, 5, 6};
  const std::vector<bool> heads{false, false, true, false, true, false};
  segmented_inclusive_scan(AddMonoid<std::uint64_t>{}, data, heads);
  EXPECT_EQ(data, (std::vector<std::uint64_t>{1, 3, 3, 7, 5, 11}));
}

TEST(SegmentedScanTest, SingleSegmentEqualsPlainScan) {
  support::SplitMix64 rng(61);
  std::vector<std::uint64_t> data(300), plain;
  for (auto& v : data) v = rng.below(100);
  plain = data;
  const std::vector<bool> heads(300, false);
  segmented_inclusive_scan(AddMonoid<std::uint64_t>{}, data, heads);
  inclusive_scan_kogge_stone(AddMonoid<std::uint64_t>{}, plain);
  EXPECT_EQ(data, plain);
}

TEST(SegmentedScanTest, AllHeadsIsIdentity) {
  std::vector<std::uint64_t> data{4, 5, 6, 7};
  segmented_inclusive_scan(AddMonoid<std::uint64_t>{}, data,
                           std::vector<bool>{true, true, true, true});
  EXPECT_EQ(data, (std::vector<std::uint64_t>{4, 5, 6, 7}));
}

TEST(SegmentedScanTest, RandomSegmentsMatchReference) {
  support::SplitMix64 rng(62);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 1 + rng.below(500);
    std::vector<std::uint64_t> data(n);
    std::vector<bool> heads(n);
    for (std::size_t i = 0; i < n; ++i) {
      data[i] = rng.below(1000);
      heads[i] = rng.chance(0.15);
    }
    auto expect = reference(AddMonoid<std::uint64_t>{}, data, heads);
    expect[0] = data[0];  // element 0 is implicitly a head either way
    segmented_inclusive_scan(AddMonoid<std::uint64_t>{}, data, heads);
    EXPECT_EQ(data, expect) << "trial " << trial;
  }
}

TEST(SegmentedScanTest, NonCommutativeOrderWithinSegments) {
  std::vector<std::string> data{"a", "b", "c", "d", "e"};
  const std::vector<bool> heads{false, false, true, false, false};
  segmented_inclusive_scan(ConcatMonoid{}, data, heads);
  EXPECT_EQ(data, (std::vector<std::string>{"a", "ab", "c", "cd", "cde"}));
}

TEST(SegmentedScanTest, PooledMatches) {
  parallel::ThreadPool pool(4);
  support::SplitMix64 rng(63);
  std::vector<std::uint64_t> a(700), b;
  std::vector<bool> heads(700);
  for (std::size_t i = 0; i < 700; ++i) {
    a[i] = rng.below(50);
    heads[i] = i % 97 == 0;
  }
  b = a;
  segmented_inclusive_scan(AddMonoid<std::uint64_t>{}, a, heads);
  segmented_inclusive_scan(AddMonoid<std::uint64_t>{}, b, heads, &pool);
  EXPECT_EQ(a, b);
}

TEST(SegmentedScanTest, FlagSizeMismatchRejected) {
  std::vector<std::uint64_t> data{1, 2};
  EXPECT_THROW(
      segmented_inclusive_scan(AddMonoid<std::uint64_t>{}, data, std::vector<bool>{true}),
      support::ContractViolation);
}

}  // namespace
}  // namespace ir::scan
