#include "support/table.hpp"

#include <gtest/gtest.h>

namespace ir::support {
namespace {

TEST(TextTableTest, AlignsColumns) {
  TextTable table;
  table.set_header({"name", "n"});
  table.add_row({"a", "1"});
  table.add_row({"longer", "22"});
  const std::string out = table.render();
  EXPECT_NE(out.find("name    n"), std::string::npos);
  EXPECT_NE(out.find("longer  22"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTableTest, RaggedRowsArePadded) {
  TextTable table;
  table.set_header({"a", "b", "c"});
  table.add_row({"1"});
  EXPECT_NO_THROW(table.render());
  EXPECT_EQ(table.rows(), 1u);
}

TEST(TextTableTest, NoHeaderMeansNoRule) {
  TextTable table;
  table.add_row({"x", "y"});
  EXPECT_EQ(table.render().find("---"), std::string::npos);
}

TEST(FormatTest, SignificantAndFixed) {
  EXPECT_EQ(fmt_g(1234.5678, 4), "1235");
  EXPECT_EQ(fmt_g(0.000123456, 3), "0.000123");
  EXPECT_EQ(fmt_f(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_f(-1.0, 1), "-1.0");
}

}  // namespace
}  // namespace ir::support
