# Empty compiler generated dependencies file for test_pram.
# This may be replaced when dependencies are built.
