// Multi-threaded service soak: many submitters, mixed plan keys, deadlines,
// cancel tokens, and a queue small enough that admission control actually
// fires — all at once, the way irserve sees traffic.  The assertions are
// invariants, not schedules: every future completes, every kOk response
// matches its system's sequential oracle, the stats ledger balances
// (accepted == completed, rejected counted per reason), and single-flight
// keeps plan_compiles bounded by the number of distinct keys.  Run under
// TSan in CI (the service-soak leg).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <thread>
#include <vector>

#include "algebra/monoids.hpp"
#include "core/general_ir.hpp"
#include "service/server.hpp"
#include "support/rng.hpp"
#include "testing/random_systems.hpp"

namespace ir::service {
namespace {

using namespace std::chrono_literals;

/// ModMul whose combine burns a little time — the slow-operation injection
/// that makes queue pressure, coalescing, and deadline misses real without
/// nondeterministic sleeps in the control path.
struct SlowModMul {
  using Value = std::uint64_t;
  static constexpr bool is_commutative = true;
  std::uint64_t modulus = 1'000'000'007ull;
  std::uint32_t spin = 0;  ///< extra iterations of busy work per combine

  Value combine(const Value& a, const Value& b) const {
    std::uint64_t noise = a ^ b;
    for (std::uint32_t i = 0; i < spin; ++i) {
      noise = noise * 6364136223846793005ull + 1442695040888963407ull;
    }
    volatile std::uint64_t sink = noise;  // keep the spin loop alive
    (void)sink;
    return static_cast<std::uint64_t>(static_cast<unsigned __int128>(a) * b % modulus);
  }
  Value pow(const Value& base, std::uint64_t exponent) const {
    Value result = 1 % modulus;
    Value factor = base % modulus;
    std::uint64_t e = exponent;
    while (e != 0) {
      if (e & 1) result = combine(result, factor);
      factor = combine(factor, factor);
      e >>= 1;
    }
    return result;
  }
};

struct Workload {
  core::GeneralIrSystem sys;
  std::vector<std::uint64_t> init;
  std::vector<std::uint64_t> oracle;
};

std::vector<Workload> make_workloads(const SlowModMul& op, std::size_t count,
                                     std::uint64_t seed) {
  std::vector<Workload> out;
  out.reserve(count);
  support::SplitMix64 rng(seed);
  for (std::size_t w = 0; w < count; ++w) {
    Workload item;
    const auto ord = testing::random_ordinary_system(40 + 20 * w, 80 + 30 * w, rng, 0.8);
    item.sys.cells = ord.cells;
    item.sys.f = ord.f;
    item.sys.g = ord.g;
    item.sys.h = ord.g;
    item.init.resize(item.sys.cells);
    for (std::size_t c = 0; c < item.sys.cells; ++c) item.init[c] = 1 + c % 89;
    item.oracle = core::general_ir_sequential(op, item.sys, item.init);
    out.push_back(std::move(item));
  }
  return out;
}

TEST(ServiceSoakTest, MixedKeysDeadlinesCancelsAndBackpressure) {
  SlowModMul op;
  op.spin = 32;
  const auto workloads = make_workloads(op, 5, 1234);

  ServiceConfig config;
  config.dispatchers = 3;
  config.exec_threads = 2;
  config.queue_capacity = 24;  // small enough that queue-full can fire
  config.high_watermark = 20;
  config.low_watermark = 8;
  config.max_batch = 8;
  Server<SlowModMul> server(op, config);

  constexpr std::size_t kSubmitters = 6;
  constexpr std::size_t kPerThread = 48;
  struct Submitted {
    std::future<Server<SlowModMul>::Response> future;
    std::size_t workload = 0;
    bool may_cancel = false;
  };
  std::vector<Submitted> submitted(kSubmitters * kPerThread);
  std::vector<std::shared_ptr<std::atomic<bool>>> tokens;
  std::mutex tokens_mutex;

  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kSubmitters; ++t) {
    threads.emplace_back([&, t] {
      support::SplitMix64 rng(9000 + t);
      for (std::size_t k = 0; k < kPerThread; ++k) {
        const std::size_t slot = t * kPerThread + k;
        const std::size_t w = rng.next() % workloads.size();
        Server<SlowModMul>::Request request;
        request.sys = workloads[w].sys;
        request.initial = workloads[w].init;
        const std::uint64_t roll = rng.next() % 10;
        if (roll == 0) {
          request.deadline = 1ns;  // all but guaranteed to expire in queue
        } else if (roll == 1) {
          request.deadline = 5s;  // generous: must NOT expire
        } else if (roll == 2) {
          auto token = std::make_shared<std::atomic<bool>>(false);
          request.cancel = token;
          submitted[slot].may_cancel = true;
          std::lock_guard lock(tokens_mutex);
          tokens.push_back(token);
        }
        submitted[slot].workload = w;
        submitted[slot].future = server.submit_async(std::move(request));
      }
    });
  }
  // Fire half the cancel tokens while traffic is in flight.
  std::thread canceller([&] {
    for (int round = 0; round < 20; ++round) {
      std::this_thread::sleep_for(1ms);
      std::lock_guard lock(tokens_mutex);
      for (std::size_t i = 0; i < tokens.size(); i += 2) {
        tokens[i]->store(true, std::memory_order_release);
      }
    }
  });
  for (auto& thread : threads) thread.join();
  canceller.join();
  server.drain();

  std::uint64_t ok = 0, rejected = 0, expired = 0, cancelled = 0;
  for (auto& entry : submitted) {
    ASSERT_EQ(entry.future.wait_for(0s), std::future_status::ready);
    const auto response = entry.future.get();
    switch (response.status) {
      case Status::kOk:
        ++ok;
        EXPECT_EQ(response.values, workloads[entry.workload].oracle);
        break;
      case Status::kDeadlineExpired:
        ++expired;
        EXPECT_TRUE(response.values.empty());
        break;
      case Status::kCancelled:
        ++cancelled;
        EXPECT_TRUE(entry.may_cancel);
        break;
      default:
        ASSERT_TRUE(is_rejected(response.status)) << to_string(response.status);
        ++rejected;
        break;
    }
  }
  EXPECT_EQ(ok + rejected + expired + cancelled, kSubmitters * kPerThread);

  const ServiceStats stats = server.stats();
  EXPECT_EQ(stats.accepted, stats.completed());  // no accepted request lost
  EXPECT_EQ(stats.executed_ok, ok);
  EXPECT_EQ(stats.deadline_misses, expired);
  EXPECT_EQ(stats.cancelled, cancelled);
  EXPECT_EQ(stats.rejected(), rejected);
  EXPECT_EQ(stats.executed_failed, 0u);
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_EQ(stats.in_flight, 0u);
  // Single-flight: at most one compile per distinct plan key ever ran.
  EXPECT_LE(stats.plan_compiles, workloads.size());
  EXPECT_GE(stats.plan_compiles, 1u);
}

TEST(ServiceSoakTest, SustainedSameKeyTrafficCoalescesAndBalances) {
  SlowModMul op;
  op.spin = 16;
  const auto workloads = make_workloads(op, 1, 77);
  const auto& work = workloads.front();

  ServiceConfig config;
  config.dispatchers = 2;
  config.exec_threads = 2;
  config.max_batch = 16;
  Server<SlowModMul> server(op, config);

  constexpr std::size_t kSubmitters = 4;
  constexpr std::size_t kPerThread = 64;
  std::vector<std::future<Server<SlowModMul>::Response>> futures(kSubmitters *
                                                                 kPerThread);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kSubmitters; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t k = 0; k < kPerThread; ++k) {
        Server<SlowModMul>::Request request;
        request.sys = work.sys;
        request.initial = work.init;
        futures[t * kPerThread + k] = server.submit_async(std::move(request));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  server.drain();

  for (auto& future : futures) {
    const auto response = future.get();
    ASSERT_EQ(response.status, Status::kOk) << response.error;
    EXPECT_EQ(response.values, work.oracle);
  }
  const ServiceStats stats = server.stats();
  EXPECT_EQ(stats.accepted, kSubmitters * kPerThread);
  EXPECT_EQ(stats.executed_ok, kSubmitters * kPerThread);
  EXPECT_EQ(stats.plan_compiles, 1u);
  // One key + queue pressure => far fewer batches than requests.
  EXPECT_LT(stats.batches, stats.accepted);
  EXPECT_GT(stats.coalesced_requests, 0u);
}

}  // namespace
}  // namespace ir::service
