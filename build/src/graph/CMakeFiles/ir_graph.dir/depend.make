# Empty dependencies file for ir_graph.
# This may be replaced when dependencies are built.
