// HTTP/1.1 keep-alive server: epoll frontend + worker pool (docs/http.md).
//
// Architecture (the tentpole shape from the roadmap's serving item):
//
//   accept ─▶ EventLoop (1 thread) ─▶ HttpParser ─▶ WorkerPool ─▶ handler
//                  ▲                                                 │
//                  └───────────── Responder::send ◀──────────────────┘
//
// The event loop owns every socket: accept, non-blocking reads, incremental
// parsing, and ordered writes all happen on the loop thread, so connection
// state needs no locks.  A *decoded* request is handed to the worker pool,
// which invokes the user handler off-loop; the handler (or any thread it
// delegates to — e.g. a service dispatcher completing a solve) answers
// through the thread-safe Responder, which marshals the response back onto
// the loop thread by id.  A connection with a request in flight stops
// reading until the response is queued, which keeps pipelined keep-alive
// responses ordered by construction.
//
// Failure semantics: parse errors answer with the parser's HTTP status and
// close; header (slow-client), idle, and write timeouts are enforced by the
// loop's tick; stop() closes the listener, lets in-flight requests drain
// until `drain_timeout`, then force-closes stragglers.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/epoll_loop.hpp"
#include "net/http_parser.hpp"
#include "support/thread_annotations.hpp"

namespace ir::net {

/// What a handler sends back.  Content-Length framing is always used (the
/// server never chunks responses); `close` forces Connection: close even for
/// a keep-alive client (e.g. after `quit`).
struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  std::vector<std::pair<std::string, std::string>> extra_headers;
  bool close = false;
};

/// Reason phrase for the status codes this tier emits ("Unknown" otherwise).
[[nodiscard]] const char* status_reason(int status) noexcept;

class HttpServer;

/// Thread-safe, copyable handle for answering one request.  send() may be
/// called from any thread exactly once; later sends for the same request
/// (or sends after the connection died) are dropped.
class Responder {
 public:
  void send(HttpResponse response) const;

 private:
  friend class HttpServer;
  Responder(HttpServer* server, std::uint64_t conn_id) noexcept
      : server_(server), conn_id_(conn_id) {}

  HttpServer* server_;
  std::uint64_t conn_id_;
};

/// Fixed-size pool draining a FIFO of decoded-request jobs.  Deliberately
/// minimal — QoS-aware scheduling lives in the service layer
/// (service::QosScheduler); this pool only decouples handler latency from
/// the event loop.
class WorkerPool {
 public:
  explicit WorkerPool(std::size_t threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  void submit(std::function<void()> job) IR_EXCLUDES(mutex_);
  /// Drain remaining jobs, then join every thread.  Idempotent.
  void stop() IR_EXCLUDES(mutex_);

 private:
  void worker_loop() IR_EXCLUDES(mutex_);

  support::Mutex mutex_;
  support::CondVar cv_;
  std::deque<std::function<void()>> jobs_ IR_GUARDED_BY(mutex_);
  bool stopping_ IR_GUARDED_BY(mutex_) = false;
  std::vector<std::thread> threads_;
};

struct HttpServerConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; read back via port()
  int backlog = 256;
  std::size_t workers = 2;
  std::size_t max_connections = 1024;
  HttpLimits limits;
  std::chrono::milliseconds tick{100};           ///< timeout-scan cadence
  std::chrono::milliseconds header_timeout{5'000};   ///< mid-request stall
  std::chrono::milliseconds idle_timeout{30'000};    ///< keep-alive idle
  std::chrono::milliseconds write_timeout{10'000};   ///< stalled response
  std::chrono::milliseconds drain_timeout{5'000};    ///< stop() grace period
};

/// Monotonic counters + one gauge, snapshot under no lock (values are
/// independently atomic; the snapshot is advisory, like ServiceStats).
struct HttpServerStats {
  std::uint64_t accepted = 0;
  std::uint64_t rejected_overload = 0;  ///< accept() past max_connections
  std::uint64_t requests = 0;
  std::uint64_t responses = 0;
  std::uint64_t parse_errors = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t closed = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t open_connections = 0;
};

class HttpServer {
 public:
  /// Invoked on a worker thread with a fully decoded request.  The handler
  /// must eventually call responder.send() exactly once (directly or from a
  /// downstream completion callback).
  using Handler = std::function<void(HttpRequest&&, Responder)>;

  HttpServer(HttpServerConfig config, Handler handler);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Bind + listen + spawn the loop thread and workers.  False (with
  /// error() set) when the socket could not be bound.
  bool start();
  /// Graceful stop: close the listener, drain in-flight requests up to
  /// drain_timeout, force-close the rest, join all threads.  Idempotent.
  void stop();

  [[nodiscard]] std::uint16_t port() const noexcept { return bound_port_; }
  [[nodiscard]] const std::string& error() const noexcept { return error_; }
  [[nodiscard]] HttpServerStats stats() const noexcept;

 private:
  using Clock = std::chrono::steady_clock;

  struct Connection {
    int fd = -1;
    std::uint64_t id = 0;
    HttpParser parser;
    std::string inbuf;          ///< bytes past the current request boundary
    std::string outbuf;         ///< serialized responses awaiting write
    std::size_t out_off = 0;
    bool in_flight = false;     ///< request dispatched, response not queued
    bool req_keep_alive = true; ///< keep-alive of the in-flight request
    bool close_after_write = false;
    bool want_write = false;    ///< EPOLLOUT armed
    bool paused = false;        ///< EPOLLIN disarmed while in flight
    Clock::time_point last_activity;
  };
  using ConnPtr = std::shared_ptr<Connection>;

  friend class Responder;

  // All private helpers below run on the loop thread.
  void on_accept();
  void on_event(const ConnPtr& conn, std::uint32_t events);
  void on_readable(const ConnPtr& conn);
  void process_input(const ConnPtr& conn);
  void dispatch_request(const ConnPtr& conn);
  void queue_response(const ConnPtr& conn, const HttpResponse& response,
                      bool keep_alive);
  void complete_request(std::uint64_t conn_id, HttpResponse response);
  void flush_writes(const ConnPtr& conn);
  void set_interest(const ConnPtr& conn, bool read, bool write);
  void close_connection(const ConnPtr& conn);
  void on_tick();
  void begin_stop(Clock::time_point deadline);

  HttpServerConfig config_;
  Handler handler_;
  EventLoop loop_;
  std::unique_ptr<WorkerPool> workers_;
  std::thread loop_thread_;
  int listen_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  std::string error_;
  bool started_ = false;
  bool stopped_ = false;

  // Loop-thread-only state (see EventLoop's threading contract).
  std::unordered_map<std::uint64_t, ConnPtr> connections_;
  std::uint64_t next_conn_id_ = 1;
  bool stopping_ = false;
  Clock::time_point stop_deadline_{};

  struct AtomicStats {
    std::atomic<std::uint64_t> accepted{0};
    std::atomic<std::uint64_t> rejected_overload{0};
    std::atomic<std::uint64_t> requests{0};
    std::atomic<std::uint64_t> responses{0};
    std::atomic<std::uint64_t> parse_errors{0};
    std::atomic<std::uint64_t> timeouts{0};
    std::atomic<std::uint64_t> closed{0};
    std::atomic<std::uint64_t> bytes_in{0};
    std::atomic<std::uint64_t> bytes_out{0};
    std::atomic<std::uint64_t> open_connections{0};
  };
  mutable AtomicStats stats_;
};

}  // namespace ir::net
