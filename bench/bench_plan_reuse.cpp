// bench_plan_reuse — what the plan/execute split buys when one system is
// solved many times (the inspector/executor amortization argument).
//
// For each ordinary engine (jumping, blocked, SPMD) at a fixed n and K:
//
//   cold     K full solves: compile_plan + execute_plan every repetition
//            (what every pre-plan API call paid)
//   warm     compile_plan once, then K execute_plan calls on the same plan
//   batched  compile_plan once, then one execute_many over K value arrays
//            (executions themselves run in parallel where legal)
//
// and prints one row per engine with the cold/warm speedup.  The acceptance
// target for this PR is warm >= 1.5x cold on the jumping engine at
// n = 50,000, K = 16.
//
//   bench_plan_reuse [--smoke] [--n=N] [--k=K] [--threads=T] [--metrics=FILE]
//
// --smoke shrinks the workload (n = 2,000, K = 4) so CI can run the bench as
// a correctness/telemetry exercise without meaningful wall-clock cost;
// --metrics=FILE dumps the telemetry registry plus the measured seconds.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "algebra/monoids.hpp"
#include "bench_report.hpp"
#include "core/plan.hpp"
#include "obs/metrics_export.hpp"
#include "parallel/thread_pool.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"
#include "testing_workloads.hpp"

namespace {

using namespace ir;

struct CaseResult {
  std::string engine;
  double cold_seconds = 0.0;
  double warm_seconds = 0.0;     // compile once + K executes (compile included)
  double batched_seconds = 0.0;  // compile once + execute_many (compile included)
  std::vector<double> cold_ns;   // per-repetition samples for the report
  std::vector<double> warm_ns;
};

CaseResult run_case(core::EngineChoice engine, const std::string& name,
                    const core::OrdinaryIrSystem& sys,
                    const std::vector<std::uint64_t>& init, std::size_t repeats,
                    parallel::ThreadPool& pool) {
  const auto op = algebra::AddMonoid<std::uint64_t>{};
  core::PlanOptions plan_options;
  plan_options.engine = engine;
  plan_options.pool = &pool;
  core::ExecOptions exec;
  exec.pool = &pool;
  exec.workers = pool.size();  // SPMD executor only

  CaseResult result;
  result.engine = name;
  std::vector<std::uint64_t> out;
  support::Stopwatch watch;

  watch.lap();
  for (std::size_t rep = 0; rep < repeats; ++rep) {
    support::Stopwatch rep_watch;
    rep_watch.lap();
    const core::Plan plan = core::compile_plan(sys, plan_options);
    out = core::execute_plan(plan, op, init, exec);
    result.cold_ns.push_back(rep_watch.lap() * 1e9);
  }
  result.cold_seconds = watch.lap();

  {
    const core::Plan plan = core::compile_plan(sys, plan_options);
    for (std::size_t rep = 0; rep < repeats; ++rep) {
      support::Stopwatch rep_watch;
      rep_watch.lap();
      out = core::execute_plan(plan, op, init, exec);
      result.warm_ns.push_back(rep_watch.lap() * 1e9);
    }
  }
  result.warm_seconds = watch.lap();

  {
    const core::Plan plan = core::compile_plan(sys, plan_options);
    std::vector<std::vector<std::uint64_t>> initials(repeats, init);
    auto outs = core::execute_many(plan, op, std::move(initials), exec);
    out = std::move(outs.back());
  }
  result.batched_seconds = watch.lap();

  // Keep `out` observable so the solves cannot be optimized away.
  std::uint64_t checksum = 0;
  for (const auto v : out) checksum ^= v;
  std::printf("%-8s n=%zu K=%zu cold=%.4fs warm=%.4fs batched=%.4fs speedup=%.2fx"
              " (checksum %llu)\n",
              name.c_str(), sys.iterations(), repeats, result.cold_seconds,
              result.warm_seconds, result.batched_seconds,
              result.cold_seconds / result.warm_seconds,
              static_cast<unsigned long long>(checksum));
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t n = 50'000;
  std::size_t repeats = 16;
  std::size_t threads = parallel::ThreadPool::default_threads();
  std::string metrics_file;
  std::string report_file;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--smoke") {
      n = 2'000;
      repeats = 4;
    } else if (arg.rfind("--n=", 0) == 0) {
      n = std::strtoull(arg.c_str() + 4, nullptr, 10);
    } else if (arg.rfind("--k=", 0) == 0) {
      repeats = std::strtoull(arg.c_str() + 4, nullptr, 10);
    } else if (arg.rfind("--threads=", 0) == 0) {
      threads = std::strtoull(arg.c_str() + 10, nullptr, 10);
    } else if (arg.rfind("--metrics=", 0) == 0) {
      metrics_file = arg.substr(10);
    } else if (arg.rfind("--report=", 0) == 0) {
      report_file = arg.substr(9);
    } else {
      std::fprintf(stderr,
                   "usage: bench_plan_reuse [--smoke] [--n=N] [--k=K]"
                   " [--threads=T] [--metrics=FILE] [--report=FILE]\n");
      return 2;
    }
  }

  support::SplitMix64 rng(n);
  const core::OrdinaryIrSystem sys = ir::bench::random_ordinary_system(n, n + n / 2, rng, 0.9);
  const std::vector<std::uint64_t> init = ir::bench::random_initial_u64(n + n / 2, rng);
  parallel::ThreadPool pool(threads);

  std::printf("# plan-once/execute-K vs K cold solves (threads=%zu)\n", pool.size());
  std::vector<CaseResult> rows;
  rows.push_back(run_case(core::EngineChoice::kJumping, "jumping", sys, init, repeats, pool));
  rows.push_back(run_case(core::EngineChoice::kBlocked, "blocked", sys, init, repeats, pool));
  rows.push_back(run_case(core::EngineChoice::kSpmd, "spmd", sys, init, repeats, pool));

  if (!metrics_file.empty()) {
    obs::ExtraFields extra = {
        {"bench", obs::json_quote("plan_reuse")},
        {"n", std::to_string(n)},
        {"repeats", std::to_string(repeats)},
        {"threads", std::to_string(pool.size())},
    };
    for (const auto& row : rows) {
      extra.emplace_back(row.engine + "_cold_seconds", std::to_string(row.cold_seconds));
      extra.emplace_back(row.engine + "_warm_seconds", std::to_string(row.warm_seconds));
      extra.emplace_back(row.engine + "_batched_seconds",
                         std::to_string(row.batched_seconds));
    }
    obs::write_metrics_file(metrics_file, extra);
    std::fprintf(stderr, "metrics written to %s\n", metrics_file.c_str());
  }
  if (!report_file.empty()) {
    ir::bench::BenchReport report("plan_reuse");
    report.set_config("n", n);
    report.set_config("k", repeats);
    report.set_config("threads", pool.size());
    for (const auto& row : rows) {
      report.add_variant(row.engine + "/cold", row.cold_ns);
      report.add_variant(row.engine + "/warm", row.warm_ns);
      // execute_many is one wall measurement over K arrays — one per-op
      // sample (wall / K), not a distribution.
      report.add_variant(
          row.engine + "/batched",
          {row.batched_seconds * 1e9 / static_cast<double>(repeats)});
    }
    report.write(report_file);
    std::fprintf(stderr, "bench report written to %s\n", report_file.c_str());
  }
  return 0;
}
