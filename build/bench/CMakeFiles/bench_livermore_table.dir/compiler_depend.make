# Empty compiler generated dependencies file for bench_livermore_table.
# This may be replaced when dependencies are built.
