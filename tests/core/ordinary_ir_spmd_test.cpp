// Exercises the deprecated one-shot shims (core/compat.hpp) on purpose;
// the define keeps -Werror builds green without losing the diagnostic
// elsewhere.
#define IR_COMPAT_ALLOW_DEPRECATED
#include "core/compat.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <type_traits>

#include "algebra/monoids.hpp"
#include "testing/random_systems.hpp"

namespace ir::core {
namespace {

using algebra::AddMonoid;
using algebra::ConcatMonoid;
using testing::random_initial_u64;
using testing::random_ordinary_system;

TEST(SpmdIrTest, MatchesSequentialSingleWorker) {
  support::SplitMix64 rng(101);
  const auto sys = random_ordinary_system(300, 400, rng, 0.8);
  const auto init = random_initial_u64(400, rng);
  const auto op = AddMonoid<std::uint64_t>{};
  EXPECT_EQ(ordinary_ir_spmd(op, sys, init, 1), ordinary_ir_sequential(op, sys, init));
}

TEST(SpmdIrTest, MatchesSequentialAcrossWorkerCounts) {
  support::SplitMix64 rng(102);
  const auto sys = random_ordinary_system(1000, 1400, rng, 0.9);
  const auto init = random_initial_u64(1400, rng);
  const auto op = AddMonoid<std::uint64_t>{};
  const auto expect = ordinary_ir_sequential(op, sys, init);
  for (std::size_t workers : {2u, 3u, 4u, 7u}) {
    EXPECT_EQ(ordinary_ir_spmd(op, sys, init, workers), expect) << workers;
  }
}

TEST(SpmdIrTest, NonCommutativeOrderPreserved) {
  support::SplitMix64 rng(103);
  const auto sys = random_ordinary_system(200, 300, rng, 0.8);
  std::vector<std::string> init(300);
  for (std::size_t c = 0; c < 300; ++c) init[c] = std::string(1, char('a' + c % 26));
  EXPECT_EQ(ordinary_ir_spmd(ConcatMonoid{}, sys, init, 4),
            ordinary_ir_sequential(ConcatMonoid{}, sys, init));
}

TEST(SpmdIrTest, RoundsMatchOneLevelEngine) {
  support::SplitMix64 rng(104);
  const auto sys = random_ordinary_system(2000, 2600, rng, 0.9);
  const auto init = random_initial_u64(2600, rng);
  const auto op = AddMonoid<std::uint64_t>{};

  OrdinaryIrStats one_level;
  OrdinaryIrOptions options;
  options.stats = &one_level;
  (void)ordinary_ir_parallel(op, sys, init, options);

  OrdinaryIrStats spmd;
  (void)ordinary_ir_spmd(op, sys, init, 3, &spmd);
  EXPECT_EQ(spmd.rounds, one_level.rounds);
}

TEST(SpmdIrTest, EmptySystem) {
  OrdinaryIrSystem sys{4, {}, {}};
  EXPECT_EQ(ordinary_ir_spmd(AddMonoid<std::uint64_t>{}, sys, {9, 8, 7, 6}, 4),
            (std::vector<std::uint64_t>{9, 8, 7, 6}));
}

TEST(SpmdIrTest, MoreWorkersThanEquations) {
  OrdinaryIrSystem sys{4, {0, 1}, {1, 2}};
  const std::vector<std::uint64_t> init{1, 10, 100, 1000};
  EXPECT_EQ(ordinary_ir_spmd(AddMonoid<std::uint64_t>{}, sys, init, 16),
            ordinary_ir_sequential(AddMonoid<std::uint64_t>{}, sys, init));
}

TEST(SpmdRegionTest, SliceCoversRange) {
  parallel::run_spmd(5, [](parallel::SpmdContext& ctx) {
    const auto [begin, end] = ctx.slice(23);
    EXPECT_LE(begin, end);
    EXPECT_LE(end, 23u);
  });
}

TEST(SpmdRegionTest, BarrierSynchronizes) {
  std::vector<int> stage(4, 0);
  parallel::run_spmd(4, [&](parallel::SpmdContext& ctx) {
    stage[ctx.worker()] = 1;
    ctx.barrier();
    for (int s : stage) EXPECT_EQ(s, 1);  // all workers passed stage 1
    ctx.barrier();
    stage[ctx.worker()] = 2;
  });
  for (int s : stage) EXPECT_EQ(s, 2);
}

TEST(SpmdRegionTest, ExceptionIsRethrownWithoutDeadlock) {
  EXPECT_THROW(parallel::run_spmd(3,
                                  [](parallel::SpmdContext& ctx) {
                                    if (ctx.worker() == 1) throw std::runtime_error("w1");
                                    ctx.barrier();  // others still pass
                                  }),
               std::runtime_error);
}

TEST(SpmdRegionTest, RejectsZeroWorkers) {
  EXPECT_THROW(parallel::run_spmd(0, [](parallel::SpmdContext&) {}),
               support::ContractViolation);
}

TEST(SpmdIrTest, HooksCalledExactlyOncePerIteration) {
  // Buffer construction used to fill val/new_val with self_value(0) copies:
  // n + peak_active spurious hook calls.  The hooks may be stateful (the
  // Möbius solver counts on exact call counts), so the SPMD executor must
  // call self_value exactly once per iteration and root_value once per root.
  OrdinaryIrSystem sys;
  sys.cells = 9;
  sys.g = {1, 2, 3, 4, 5, 6, 7, 8};
  sys.f = {0, 1, 2, 3, 0, 5, 6, 7};  // two chains rooted at cell 0
  std::vector<std::uint64_t> init(sys.cells);
  for (std::size_t c = 0; c < sys.cells; ++c) init[c] = 10 + c;

  PlanOptions options;
  options.engine = EngineChoice::kSpmd;
  const Plan plan = compile_plan(sys, options);

  std::atomic<std::size_t> root_calls{0};
  std::atomic<std::size_t> self_calls{0};
  ExecOptions exec;
  exec.workers = 3;
  const auto op = AddMonoid<std::uint64_t>{};
  const auto traces = execute_iteration_values<AddMonoid<std::uint64_t>>(
      plan, op,
      [&](std::size_t cell) {
        ++root_calls;
        return init[cell];
      },
      [&](std::size_t i) {
        ++self_calls;
        return init[sys.g[i]];
      },
      exec);

  EXPECT_EQ(self_calls.load(), sys.iterations());
  EXPECT_EQ(root_calls.load(), 2u);  // exactly the two chain roots
  ASSERT_EQ(traces.size(), sys.iterations());
  const auto expected = ordinary_ir_sequential(op, sys, init);
  for (std::size_t i = 0; i < sys.iterations(); ++i) {
    EXPECT_EQ(traces[i], expected[sys.g[i]]) << i;
  }
}

namespace {

/// A value type without a default constructor: forces the SPMD executor's
/// sequential-seed path (it cannot resize buffers, so it must construct every
/// entry from the hooks — still exactly once each).
struct Tagged {
  std::uint64_t v;
  explicit Tagged(std::uint64_t value) : v(value) {}
  friend bool operator==(const Tagged&, const Tagged&) = default;
};

struct TaggedAdd {
  using Value = Tagged;
  static constexpr bool is_commutative = true;
  Value combine(const Value& a, const Value& b) const { return Tagged(a.v + b.v); }
};

}  // namespace

TEST(SpmdIrTest, NonDefaultConstructibleValuesStillSeedOncePerIteration) {
  static_assert(!std::is_default_constructible_v<Tagged>);
  OrdinaryIrSystem sys;
  sys.cells = 6;
  sys.g = {1, 2, 3, 4, 5};
  sys.f = {0, 1, 2, 3, 4};  // one chain
  PlanOptions options;
  options.engine = EngineChoice::kSpmd;
  const Plan plan = compile_plan(sys, options);

  std::atomic<std::size_t> self_calls{0};
  ExecOptions exec;
  exec.workers = 2;
  const auto traces = execute_iteration_values<TaggedAdd>(
      plan, TaggedAdd{}, [](std::size_t cell) { return Tagged(100 + cell); },
      [&](std::size_t i) {
        ++self_calls;
        return Tagged(i + 1);
      },
      exec);
  EXPECT_EQ(self_calls.load(), sys.iterations());
  // Chain i folds root 100 + all self values 1..i+1.
  ASSERT_EQ(traces.size(), 5u);
  std::uint64_t acc = 100;
  for (std::size_t i = 0; i < 5; ++i) {
    acc += i + 1;
    EXPECT_EQ(traces[i].v, acc) << i;
  }
}

}  // namespace
}  // namespace ir::core
