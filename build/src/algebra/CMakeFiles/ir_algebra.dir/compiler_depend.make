# Empty compiler generated dependencies file for ir_algebra.
# This may be replaced when dependencies are built.
