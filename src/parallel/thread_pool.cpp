#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <string>

#include "obs/telemetry.hpp"

namespace ir::parallel {

ThreadPool::ThreadPool(std::size_t threads) {
  IR_REQUIRE(threads >= 1, "thread pool needs at least one worker");
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    support::LockGuard lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

std::size_t ThreadPool::default_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::clamp<std::size_t>(hw == 0 ? 4 : hw, 1, 256);
}

void ThreadPool::worker_loop(std::size_t index) {
  // One Chrome-trace track per pool worker; the trace shows task spans
  // separated by pool.wait (idle) spans, so utilization reads off directly.
  IR_SET_THREAD_NAME("pool-worker-" + std::to_string(index));
  for (;;) {
    std::function<void()> task;
    {
      IR_SPAN("pool.wait");
      support::UniqueLock lock(mutex_);
      while (!shutting_down_ && queue_.empty()) work_available_.wait(lock);
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    try {
      IR_SPAN("pool.task");
      IR_COUNTER_ADD("pool.tasks", 1);
      task();
    } catch (...) {
      support::LockGuard lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      support::LockGuard lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0 && queue_.empty()) batch_done_.notify_all();
    }
  }
}

void ThreadPool::run_batch(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  IR_SPAN("pool.batch");
  IR_COUNTER_ADD("pool.batches", 1);
  {
    support::LockGuard lock(mutex_);
    IR_REQUIRE(in_flight_ == 0 && queue_.empty(),
               "run_batch is not reentrant: a batch is already in flight");
    first_error_ = nullptr;
    in_flight_ = tasks.size();
    for (auto& task : tasks) queue_.push(std::move(task));
  }
  work_available_.notify_all();
  std::exception_ptr error;
  {
    support::UniqueLock lock(mutex_);
    while (in_flight_ != 0 || !queue_.empty()) batch_done_.wait(lock);
    error = first_error_;
    first_error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace ir::parallel
