// Shared workload builders for the bench harnesses (mirrors the generators
// the tests use; kept separate so bench binaries do not depend on test code).
#pragma once

#include <vector>

#include "core/ir_problem.hpp"
#include "support/rng.hpp"

namespace ir::bench {

/// Random ordinary IR system with injective g and `rewire_fraction` of reads
/// redirected at earlier writes (chain-depth knob).
inline core::OrdinaryIrSystem random_ordinary_system(std::size_t iterations,
                                                     std::size_t cells,
                                                     support::SplitMix64& rng,
                                                     double rewire_fraction = 0.7) {
  core::OrdinaryIrSystem sys;
  sys.cells = cells;
  sys.g = support::random_injection(iterations, cells, rng);
  sys.f.resize(iterations);
  for (std::size_t i = 0; i < iterations; ++i) {
    if (i > 0 && rng.chance(rewire_fraction)) {
      sys.f[i] = sys.g[rng.below(i)];
    } else {
      sys.f[i] = rng.below(cells);
    }
  }
  return sys;
}

/// Random general IR system (g may repeat; f/h independently rewired).
inline core::GeneralIrSystem random_general_system(std::size_t iterations,
                                                   std::size_t cells,
                                                   support::SplitMix64& rng,
                                                   double rewire_fraction = 0.6) {
  core::GeneralIrSystem sys;
  sys.cells = cells;
  sys.g.resize(iterations);
  sys.f.resize(iterations);
  sys.h.resize(iterations);
  for (std::size_t i = 0; i < iterations; ++i) {
    sys.g[i] = rng.below(cells);
    auto pick = [&]() {
      if (i > 0 && rng.chance(rewire_fraction)) return sys.g[rng.below(i)];
      return rng.below(cells);
    };
    sys.f[i] = pick();
    sys.h[i] = pick();
  }
  return sys;
}

/// Random positive initial values.
inline std::vector<std::uint64_t> random_initial_u64(std::size_t cells,
                                                     support::SplitMix64& rng,
                                                     std::uint64_t bound = 1000) {
  std::vector<std::uint64_t> init(cells);
  for (auto& v : init) v = 1 + rng.below(bound - 1);
  return init;
}

}  // namespace ir::bench
