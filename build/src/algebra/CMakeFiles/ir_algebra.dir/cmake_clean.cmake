file(REMOVE_RECURSE
  "CMakeFiles/ir_algebra.dir/moebius.cpp.o"
  "CMakeFiles/ir_algebra.dir/moebius.cpp.o.d"
  "libir_algebra.a"
  "libir_algebra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_algebra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
