// Prometheus text-format exposition for a MetricsSnapshot.
//
// Counters and gauges render as one sample each; histograms render as
// Prometheus *summaries* — pre-computed quantile lines plus `_sum` and
// `_count` — rather than 496 cumulative `le` buckets, which would bloat
// every scrape for no extra fidelity (the quantiles already carry the
// log-linear bucket error bound of ≤ 12.5%).
//
// Metric names are sanitized to the Prometheus grammar: dots and any other
// non-[a-zA-Z0-9_] become '_', and everything gains an "ir_" prefix so the
// scrape namespaces cleanly ("service.latency.total_us" →
// "ir_service_latency_total_us").
#pragma once

#include <iosfwd>
#include <string>

#include "obs/registry.hpp"

namespace ir::obs {

/// Sanitized Prometheus metric name: "ir_" + name with every character
/// outside [a-zA-Z0-9_] replaced by '_'.
[[nodiscard]] std::string prometheus_name(const std::string& name);

/// Render the snapshot in Prometheus text exposition format.
void write_prometheus_text(std::ostream& out, const MetricsSnapshot& snapshot);

/// Same, as a string.
[[nodiscard]] std::string prometheus_text(const MetricsSnapshot& snapshot);

/// Write the snapshot to `path` atomically (tmp file + rename), so a scraper
/// reading the file concurrently never sees a torn exposition.
void write_prometheus_file(const std::string& path, const MetricsSnapshot& snapshot);

}  // namespace ir::obs
