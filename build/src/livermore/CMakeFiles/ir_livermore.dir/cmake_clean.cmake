file(REMOVE_RECURSE
  "CMakeFiles/ir_livermore.dir/data.cpp.o"
  "CMakeFiles/ir_livermore.dir/data.cpp.o.d"
  "CMakeFiles/ir_livermore.dir/info.cpp.o"
  "CMakeFiles/ir_livermore.dir/info.cpp.o.d"
  "CMakeFiles/ir_livermore.dir/kernels.cpp.o"
  "CMakeFiles/ir_livermore.dir/kernels.cpp.o.d"
  "CMakeFiles/ir_livermore.dir/parallel.cpp.o"
  "CMakeFiles/ir_livermore.dir/parallel.cpp.o.d"
  "libir_livermore.a"
  "libir_livermore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_livermore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
