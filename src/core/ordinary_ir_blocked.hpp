// Work-efficient blocked Ordinary-IR solver (two-level scheme).
//
// Pure pointer jumping performs Θ(n log n) work; with P << n processors the
// standard remedy is a two-level algorithm:
//
//   Phase 1 (parallel over P contiguous iteration blocks): sweep each block
//     sequentially.  An equation whose predecessor lies in the same block
//     inherits its running product in O(1); an equation whose predecessor
//     lies in an earlier block becomes PARTIAL — its value is
//     W(i) = W(ext(i)) ⊙ partial(i) with ext(i) outside the block.
//   Phase 2: resolve the partials block by block, ascending.  When block b
//     is processed every earlier block is fully resolved, so each partial
//     needs exactly ONE ⊙: W(i) = W(ext(i)) ⊙ partial(i).  Within a block
//     the partials are independent (their ext targets lie strictly earlier),
//     so each block's fix-up is a parallel_for.
//
// Complexity: O(n) WORK always (one ⊙ per equation plus one per partial —
// work-efficient, unlike pointer jumping's Θ(n log n)), and O(n/P + P)
// TIME: P parallel block sweeps in phase 1, then P dependent-but-internally-
// parallel fix-up steps.  The trade against the one-level engine is depth
// (P vs log n); the ABL-5 bench measures the crossover, and the stats
// expose the partial fraction so callers can pick a solver at runtime.
//
// Operand order is preserved (op may be non-commutative), same as the
// one-level engine.
#pragma once

#include <functional>
#include <vector>

#include "core/engine_types.hpp"
#include "core/ordinary_ir.hpp"

namespace ir::core {

/// Iteration values W(i) via the two-level scheme; hooks as in
/// ordinary_ir_iteration_values.
template <algebra::BinaryOperation Op>
std::vector<typename Op::Value> ordinary_ir_blocked_values(
    const Op& op, const OrdinaryIrSystem& sys,
    const std::function<typename Op::Value(std::size_t)>& root_value,
    const std::function<typename Op::Value(std::size_t)>& self_value,
    const BlockedIrOptions& options = {}) {
  using Value = typename Op::Value;
  IR_SPAN("blocked.solve");
  sys.validate();
  const std::size_t n = sys.iterations();
  BlockedIrStats stats;

  std::vector<Value> val;
  val.reserve(n);
  for (std::size_t i = 0; i < n; ++i) val.push_back(self_value(i));
  std::vector<std::size_t> ext(n, kNone);  // unresolved external predecessor
  if (n == 0) {
    if (options.stats != nullptr) *options.stats = stats;
    return val;
  }

  const std::vector<std::size_t> pred = last_writer_before(sys.g, sys.f, sys.cells);
  const std::size_t want_blocks =
      options.blocks != 0 ? options.blocks
                          : (options.pool != nullptr ? options.pool->size() : 1);
  const auto blocks = parallel::partition_blocks(n, want_blocks);
  stats.blocks = blocks.size();

  // Phase 1: block-local sequential sweeps.  Per-block op counts are summed
  // afterwards (no shared-counter contention inside the sweep).
  std::vector<std::size_t> block_ops(blocks.size(), 0);
  auto sweep = [&](std::size_t b) {
    const auto& block = blocks[b];
    std::size_t ops = 0;
    for (std::size_t i = block.begin; i < block.end; ++i) {
      const std::size_t p = pred[i];
      if (p == kNone) {
        val[i] = op.combine(root_value(sys.f[i]), val[i]);
        ++ops;
      } else if (p >= block.begin) {
        // In-block predecessor (p < i always holds): fold its state in.
        val[i] = op.combine(val[p], val[i]);
        ext[i] = ext[p];
        ++ops;
      } else {
        ext[i] = p;  // cross-block: resolve in phase 2
      }
    }
    block_ops[b] = ops;
  };
  {
    IR_SPAN("blocked.phase1");
    if (options.pool != nullptr) {
      parallel::parallel_for(*options.pool, blocks.size(), sweep);
    } else {
      for (std::size_t b = 0; b < blocks.size(); ++b) sweep(b);
    }
  }
  for (const std::size_t ops : block_ops) stats.op_applications += ops;

  // Phase 2: block-ordered fix-up.  Every partial's ext target lies in an
  // earlier block, so processing blocks in ascending order guarantees the
  // target is COMPLETE by the time it is read — one ⊙ per partial.
  std::vector<std::vector<std::size_t>> partials_per_block(blocks.size());
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    for (std::size_t i = blocks[b].begin; i < blocks[b].end; ++i) {
      if (ext[i] != kNone) {
        partials_per_block[b].push_back(i);
        ++stats.partials;
      }
    }
  }
  IR_SPAN("blocked.phase2");
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    const auto& fixups = partials_per_block[b];
    if (fixups.empty()) continue;
    auto resolve = [&](std::size_t k) {
      const std::size_t i = fixups[k];
      const std::size_t e = ext[i];
      IR_INVARIANT(e < blocks[b].begin && ext[e] == kNone,
                   "phase-2 target must be complete and in an earlier block");
      val[i] = op.combine(val[e], val[i]);
    };
    if (options.pool != nullptr) {
      parallel::parallel_for(*options.pool, fixups.size(), resolve);
    } else {
      for (std::size_t k = 0; k < fixups.size(); ++k) resolve(k);
    }
    // Mark complete only after the whole block resolved (reads above must
    // not observe half-finished neighbours — they cannot: targets are in
    // earlier blocks — but later blocks DO read this block's ext flags).
    for (const std::size_t i : fixups) ext[i] = kNone;
    stats.op_applications += fixups.size();
    ++stats.resolve_rounds;
  }

  IR_COUNTER_ADD("blocked.solves", 1);
  IR_COUNTER_ADD("blocked.blocks", stats.blocks);
  IR_COUNTER_ADD("blocked.partials", stats.partials);
  IR_COUNTER_ADD("blocked.resolve_rounds", stats.resolve_rounds);
  IR_COUNTER_ADD("blocked.op_applications", stats.op_applications);

  if (options.stats != nullptr) *options.stats = stats;
  return val;
}

// The one-shot ordinary_ir_blocked wrapper now lives in core/compat.hpp
// (deprecated): new code compiles a plan once and replays it.

}  // namespace ir::core
