// Classic parallel prefix (scan) algorithms.
//
// The paper positions IR solving as the indexed generalization of solving
// ordinary recurrences with parallel prefix (its references [2][3][4]); these
// baselines make that comparison executable:
//   * inclusive_scan_sequential — the O(n) loop.
//   * inclusive_scan_kogge_stone — the O(log n)-round recursive-doubling
//     scan (Kogge & Stone 1973), n processors.
//   * exclusive_scan_blelloch — work-efficient up/down-sweep scan.
// All variants accept any associative operation (commutativity not needed)
// and optionally run their rounds on a thread pool.
#pragma once

#include <span>
#include <vector>

#include "algebra/concepts.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"
#include "support/contract.hpp"

namespace ir::scan {

/// In-place sequential inclusive scan: data[i] <- data[0] ⊙ ... ⊙ data[i].
template <algebra::BinaryOperation Op>
void inclusive_scan_sequential(const Op& op, std::span<typename Op::Value> data) {
  for (std::size_t i = 1; i < data.size(); ++i) {
    data[i] = op.combine(data[i - 1], data[i]);
  }
}

/// In-place Kogge-Stone inclusive scan: ceil(log2 n) rounds of
/// data[i] <- data[i - 2^t] ⊙ data[i].  Rounds are double-buffered (the PRAM
/// synchronous-write discipline) and optionally parallel over i.
template <algebra::BinaryOperation Op>
void inclusive_scan_kogge_stone(const Op& op, std::vector<typename Op::Value>& data,
                                parallel::ThreadPool* pool = nullptr) {
  const std::size_t n = data.size();
  if (n <= 1) return;
  std::vector<typename Op::Value> buffer(data);
  auto* src = &data;
  auto* dst = &buffer;
  for (std::size_t stride = 1; stride < n; stride <<= 1) {
    auto round = [&, stride](std::size_t i) {
      (*dst)[i] = (i >= stride) ? op.combine((*src)[i - stride], (*src)[i]) : (*src)[i];
    };
    if (pool != nullptr) {
      parallel::parallel_for(*pool, n, round);
    } else {
      for (std::size_t i = 0; i < n; ++i) round(i);
    }
    std::swap(src, dst);
  }
  if (src != &data) data = *src;
}

/// In-place Blelloch exclusive scan: data[i] <- identity ⊙ data[0] ⊙ ... ⊙
/// data[i-1].  Requires an identity element and a power-of-two-padded sweep
/// (handled internally); work-efficient (O(n) applications of ⊙).
template <algebra::BinaryOperation Op>
void exclusive_scan_blelloch(const Op& op, std::vector<typename Op::Value>& data,
                             typename Op::Value identity,
                             parallel::ThreadPool* pool = nullptr) {
  const std::size_t n = data.size();
  if (n == 0) return;
  std::size_t padded = 1;
  while (padded < n) padded <<= 1;
  std::vector<typename Op::Value> tree(padded, identity);
  for (std::size_t i = 0; i < n; ++i) tree[i] = data[i];

  // Up-sweep (reduce).
  for (std::size_t stride = 1; stride < padded; stride <<= 1) {
    const std::size_t pairs = padded / (2 * stride);
    auto up = [&, stride](std::size_t k) {
      const std::size_t right = (2 * k + 2) * stride - 1;
      const std::size_t left = right - stride;
      tree[right] = op.combine(tree[left], tree[right]);
    };
    if (pool != nullptr) {
      parallel::parallel_for(*pool, pairs, up);
    } else {
      for (std::size_t k = 0; k < pairs; ++k) up(k);
    }
  }

  // Down-sweep.
  tree[padded - 1] = identity;
  for (std::size_t stride = padded / 2; stride >= 1; stride >>= 1) {
    const std::size_t pairs = padded / (2 * stride);
    auto down = [&, stride](std::size_t k) {
      const std::size_t right = (2 * k + 2) * stride - 1;
      const std::size_t left = right - stride;
      auto tmp = tree[left];
      tree[left] = tree[right];
      tree[right] = op.combine(tmp, tree[right]);
    };
    if (pool != nullptr) {
      parallel::parallel_for(*pool, pairs, down);
    } else {
      for (std::size_t k = 0; k < pairs; ++k) down(k);
    }
    if (stride == 1) break;
  }

  for (std::size_t i = 0; i < n; ++i) data[i] = tree[i];
}

}  // namespace ir::scan
