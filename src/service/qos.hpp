// Weighted fair-share queueing for the HTTP tier (docs/http.md).
//
// Deficit round robin over per-tenant FIFO queues, layered *in front of* the
// service's admission control: decoded requests park here, and at most
// `max_inflight` of them are live inside the shard router at any moment.
// That cap is what makes the scheduler meaningful — under saturation the
// backlog accumulates in these per-tenant queues (where DRR decides who goes
// next, proportionally to weight) instead of in the service's shared FIFO
// queue (where arrival order would decide, letting one firehose tenant
// starve everyone).
//
// The scheduler owns no thread.  Dispatch is pumped by the threads already
// in motion: try_enqueue (an HTTP worker) and on_complete (the dispatcher
// thread finishing a solve) both run the DRR loop, draining whatever the
// inflight budget allows.  Jobs are started *outside* the lock; a job is the
// non-blocking submit-callback into the router, so pump holds no lock across
// any slow work.
//
// DRR per the textbook: each freshly visited non-empty queue earns
// quantum * weight deficit; it dispatches (cost 1 per request) until the
// deficit or the queue runs dry; an emptied queue forfeits its remaining
// deficit.  A service interrupted by the inflight budget RESUMES at the same
// tenant with its remaining balance, so the weight ratio holds even at
// max_inflight = 1.  A tenant with weight 3 therefore drains 3x the rate of
// a weight-1 tenant under contention, and an idle tenant accumulates
// nothing.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "support/thread_annotations.hpp"

namespace ir::service {

class QosScheduler {
 public:
  /// A unit of admitted work: starts the (non-blocking) downstream submit.
  /// The owner MUST call on_complete() exactly once when the work finishes.
  using Job = std::function<void()>;

  struct Config {
    std::size_t max_inflight = 8;    ///< live requests inside the service
    std::size_t tenant_queue_cap = 256;  ///< per-tenant backlog bound
    std::uint64_t quantum = 1;       ///< deficit earned per visit per weight
  };

  struct TenantCounters {
    std::uint64_t enqueued = 0;
    std::uint64_t dispatched = 0;
    std::uint64_t rejected_full = 0;
    std::uint64_t peak_depth = 0;
  };

  /// `weights[i]` is tenant i's fair-share weight (>= 1).
  QosScheduler(std::vector<std::uint64_t> weights, Config config);

  /// Queue one job for `tenant`.  False when that tenant's backlog is at
  /// capacity (the caller answers 503 without touching shared state).
  /// May dispatch (this or other tenants' jobs) before returning.
  [[nodiscard]] bool try_enqueue(std::size_t tenant, Job job) IR_EXCLUDES(mutex_);

  /// Signal one dispatched job finished; pumps further dispatches.
  void on_complete() IR_EXCLUDES(mutex_);

  /// Block until no job is queued or in flight (drain barriers in tests and
  /// shutdown paths).
  void wait_idle() IR_EXCLUDES(mutex_);

  [[nodiscard]] std::size_t inflight() const IR_EXCLUDES(mutex_);
  [[nodiscard]] std::vector<TenantCounters> counters() const IR_EXCLUDES(mutex_);

 private:
  struct TenantQueue {
    std::deque<Job> jobs;
    std::uint64_t weight = 1;
    std::uint64_t deficit = 0;
    TenantCounters counters;
  };

  /// Pop everything the inflight budget + DRR allow into `out`.
  void collect_locked(std::vector<Job>& out) IR_REQUIRES(mutex_);
  [[nodiscard]] bool any_queued_locked() const IR_REQUIRES(mutex_);

  const Config config_;
  mutable support::Mutex mutex_;
  support::CondVar idle_;
  std::vector<TenantQueue> tenants_ IR_GUARDED_BY(mutex_);
  std::size_t inflight_ IR_GUARDED_BY(mutex_) = 0;
  std::size_t next_tenant_ IR_GUARDED_BY(mutex_) = 0;  ///< DRR round cursor
};

}  // namespace ir::service
