// Request/response vocabulary of the batch-solve service (docs/service.md).
//
// The service accepts solve requests — a system, its initial values, and
// per-request policy (engine choice, deadline, cancellation token) — and
// answers each with a BasicResponse: either the solved value array or a
// typed non-OK status explaining exactly why no values were produced
// (admission reject, expired deadline, cooperative cancel, engine failure).
// Statuses are deliberately a closed enum, not free-form strings: admission
// control is part of the API contract, and callers route on it.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/clock.hpp"

namespace ir::core {
class PlanStore;
}  // namespace ir::core

namespace ir::service {

class SlowLog;

/// Steady clock used for enqueue timestamps and deadlines — wall-clock jumps
/// must never expire a request.
using Clock = std::chrono::steady_clock;

/// Terminal state of one request.
enum class Status {
  kOk,                    ///< executed; `values` holds the solved array
  kRejectedQueueFull,     ///< admission: queue at hard capacity
  kRejectedBackpressure,  ///< admission: above the high watermark (hysteresis)
  kRejectedShutdown,      ///< admission: server draining or shut down
  kRejectedInvalid,       ///< admission: request malformed (sizes, validation)
  kDeadlineExpired,       ///< accepted, but its deadline passed before execute
  kCancelled,             ///< accepted, but its cancel token fired before execute
  kFailed,                ///< accepted, but compile/execute threw
};

[[nodiscard]] std::string to_string(Status status);

/// True for the three admission-control rejects (the request was never
/// queued); deadline/cancel/failure happen to *accepted* requests.
[[nodiscard]] constexpr bool is_rejected(Status status) noexcept {
  return status == Status::kRejectedQueueFull ||
         status == Status::kRejectedBackpressure ||
         status == Status::kRejectedShutdown || status == Status::kRejectedInvalid;
}

/// Timestamped lifecycle edges of one request, in process-monotonic
/// nanoseconds (obs::now_ns — available regardless of IR_TELEMETRY, because
/// ids and phase timings are part of request identity, not optional
/// metrics).  A zero timestamp means the request never reached that edge:
/// an admission reject has only request_id set; a deadline miss has
/// accepted/coalesced but no dispatched.
struct RequestTrace {
  std::uint64_t request_id = 0;    ///< process-unique, assigned at submit
  std::uint64_t accepted_ns = 0;   ///< admission accepted, enqueued
  std::uint64_t coalesced_ns = 0;  ///< claimed into a plan-keyed group
  std::uint64_t dispatched_ns = 0; ///< survived triage, handed to the executor
  std::uint64_t finished_ns = 0;   ///< terminal edge stamped (reply imminent)
  std::uint64_t batch_id = 0;      ///< coalesced group id (0 = never claimed)
  std::size_t batch_size = 0;      ///< live size of the executed batch
  std::int64_t deadline_slack_ns = 0;  ///< deadline - finish; <0 = missed

  /// Queue phase: accept -> dispatch (or -> finish for triaged-out requests).
  [[nodiscard]] std::uint64_t queue_ns() const noexcept {
    const std::uint64_t end = dispatched_ns != 0 ? dispatched_ns : finished_ns;
    return end > accepted_ns ? end - accepted_ns : 0;
  }
  /// Execute phase: dispatch -> finish (0 when never dispatched).
  [[nodiscard]] std::uint64_t execute_ns() const noexcept {
    return dispatched_ns != 0 && finished_ns > dispatched_ns
               ? finished_ns - dispatched_ns
               : 0;
  }
  /// Whole lifetime: accept -> finish (0 for admission rejects).
  [[nodiscard]] std::uint64_t total_ns() const noexcept {
    return accepted_ns != 0 && finished_ns > accepted_ns
               ? finished_ns - accepted_ns
               : 0;
  }
};

/// Per-request execution facts, filled for kOk responses (and partially for
/// the terminal-without-execute statuses, where wait is still meaningful).
struct ResponseInfo {
  std::size_t batch_size = 0;         ///< live requests in the coalesced batch
  bool coalesced = false;             ///< rode a batch with other requests
  std::uint64_t plan_fingerprint = 0; ///< content fingerprint of the plan used
  std::string engine;                 ///< plan engine name ("jumping", ...)
  std::string variant;                ///< execute variant ("wide" or "scalar")
  Clock::duration wait{};             ///< enqueue -> dispatch
  Clock::duration execute{};          ///< the batch's execute_many wall time
  RequestTrace trace;                 ///< lifecycle edges (docs/observability.md)
};

/// One completed request.  `values` is populated iff `status == kOk`.
template <typename ValueT>
struct BasicResponse {
  Status status = Status::kFailed;
  std::string error;  ///< human-readable detail for non-OK statuses
  std::vector<ValueT> values;
  ResponseInfo info;

  [[nodiscard]] bool ok() const noexcept { return status == Status::kOk; }
};

/// Counter snapshot of a running (or drained) server.  Monotone except the
/// two depth fields; `accepted == executed_ok + executed_failed +
/// deadline_misses + cancelled` once the server has drained.
struct ServiceStats {
  std::uint64_t accepted = 0;
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t rejected_backpressure = 0;
  std::uint64_t rejected_shutdown = 0;
  std::uint64_t rejected_invalid = 0;
  std::uint64_t executed_ok = 0;
  std::uint64_t executed_failed = 0;
  std::uint64_t deadline_misses = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t dispatched = 0;      ///< survived triage, handed to executor
  std::uint64_t replied = 0;         ///< accepted requests whose promise was fulfilled
  std::uint64_t ticker_samples = 0;  ///< background gauge samples taken
  std::uint64_t batches = 0;             ///< execute_many dispatches
  std::uint64_t coalesced_requests = 0;  ///< requests that shared a batch
  std::uint64_t peak_batch = 0;
  std::uint64_t peak_queue_depth = 0;
  std::uint64_t queue_depth = 0;  ///< at snapshot time
  std::uint64_t in_flight = 0;    ///< dispatched but not yet completed
  std::uint64_t plan_cache_hits = 0;
  std::uint64_t plan_cache_misses = 0;
  std::uint64_t plan_cache_collisions = 0;  ///< 64-bit key double-check rejections
  std::uint64_t plan_compiles = 0;  ///< compile_plan runs (single-flighted)
  std::uint64_t plan_store_hits = 0;       ///< cache misses served from disk
  std::uint64_t plan_store_misses = 0;     ///< store lookups with no entry
  std::uint64_t plan_store_rejects = 0;    ///< corrupt/mismatched entries refused
  std::uint64_t plan_store_puts = 0;       ///< fresh compiles written through
  std::uint64_t plan_store_preloaded = 0;  ///< plans warm-started at boot

  [[nodiscard]] std::uint64_t completed() const noexcept {
    return executed_ok + executed_failed + deadline_misses + cancelled;
  }
  [[nodiscard]] std::uint64_t rejected() const noexcept {
    return rejected_queue_full + rejected_backpressure + rejected_shutdown +
           rejected_invalid;
  }
  [[nodiscard]] std::string to_string() const;
};

/// Service sizing and policy.  Everything is fixed at construction; the
/// irserve frontend maps its flags straight onto these fields.
struct ServiceConfig {
  /// Hard queue capacity: admission rejects kRejectedQueueFull beyond it.
  std::size_t queue_capacity = 1024;

  /// Backpressure hysteresis: once depth reaches `high_watermark` the server
  /// rejects kRejectedBackpressure until depth falls to `low_watermark`.
  /// 0 disables the soft gate (only the hard capacity rejects).
  std::size_t high_watermark = 0;
  std::size_t low_watermark = 0;

  /// Dispatcher threads: each repeatedly claims one plan-keyed group from
  /// the queue and runs it as a single execute_many.
  std::size_t dispatchers = 2;

  /// Max requests coalesced into one batch.
  std::size_t max_batch = 64;

  /// Per-dispatcher ThreadPool size for the inner execute_many / compile;
  /// 0 = no pool (serial inner execute, parallelism across dispatchers only).
  std::size_t exec_threads = 0;

  /// ExecOptions::workers for SPMD plans (0 = 1).
  std::size_t spmd_workers = 0;

  /// Route coalesced batches (2+ requests) through the wide SoA executor
  /// (core/execute_wide.hpp): the batch is transposed once and all lanes run
  /// the schedule in lockstep, which vectorizes the jump-round gathers.
  /// Off = per-request execute_plan, the pre-wide behaviour.
  bool wide_batches = true;

  /// Plan-cache capacity of the server's Solver; 0 = the IR_PLAN_CACHE_CAP
  /// environment override (default 64) — see core/solver.hpp.
  std::size_t plan_cache_capacity = 0;

  /// Background ticker interval sampling queue-depth / in-flight gauges and
  /// histograms; 0 disables the ticker thread (tests and embedders that
  /// snapshot deterministically don't want a sampler racing them).
  std::size_t ticker_interval_ms = 0;

  /// Slow-request threshold: an accepted request whose accept→finish time
  /// reaches this many nanoseconds is written to `slow_log` as one JSON
  /// line.  0 disables the slow log even when `slow_log` is set.
  std::uint64_t slow_request_ns = 0;

  /// Sink for slow-request records (borrowed, must outlive the server).
  SlowLog* slow_log = nullptr;

  /// Optional on-disk plan store (core/plan_io.hpp; borrowed, must outlive
  /// the server).  The server's Solver falls back to it on cache misses
  /// before compiling, and writes fresh compiles through unless
  /// `store_writes` is off.
  core::PlanStore* plan_store = nullptr;
  bool store_writes = true;

  /// Preload every store entry into the plan cache at construction: a
  /// restarted server serves its existing working set with zero compiles
  /// (irserve --warm-start).  Requires `plan_store`.
  bool warm_start = false;
};

namespace detail {

class ServerCore;

/// Queue entry seen by the type-erased core: everything admission, the
/// coalescer, and the deadline/cancel triage need, plus a virtual completion
/// hook the typed layer implements by fulfilling its promise.
class PendingBase {
 public:
  virtual ~PendingBase() = default;

  /// Terminal edge: stamps the trace, routes ledger/latency/slow-log
  /// bookkeeping through the owning core (when the request was accepted —
  /// admission rejects have no core and skip the ledger), then hands the
  /// final ResponseInfo to fulfill().  Idempotent: the first caller wins,
  /// later calls are no-ops — "every accepted request ends in exactly one
  /// terminal edge" is enforced here, not by caller discipline.
  void finish(Status status, const std::string& error, const ResponseInfo& info);

  std::uint64_t coalesce_key = 0;  ///< plan_cache_key of (system, options)
  Clock::time_point enqueued_at{};
  Clock::time_point deadline = Clock::time_point::max();
  std::shared_ptr<std::atomic<bool>> cancel;  ///< null = not cancellable
  RequestTrace trace;              ///< lifecycle edges, stamped by the core
  ServerCore* core = nullptr;      ///< set on admission; null = rejected

 protected:
  /// Deliver the terminal response (fulfill the promise).  Called exactly
  /// once, never concurrently, after all bookkeeping.
  virtual void fulfill(Status status, const std::string& error,
                       const ResponseInfo& info) = 0;

 private:
  std::atomic<bool> finished_{false};
};

}  // namespace detail

}  // namespace ir::service
