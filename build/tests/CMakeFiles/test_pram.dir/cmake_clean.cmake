file(REMOVE_RECURSE
  "CMakeFiles/test_pram.dir/pram/machine_test.cpp.o"
  "CMakeFiles/test_pram.dir/pram/machine_test.cpp.o.d"
  "test_pram"
  "test_pram.pdb"
  "test_pram[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
