// Shared formatting + parsing of the serve line protocol (docs/service.md).
//
// Extracted from tools/irserve.cpp so the newline protocol and the HTTP tier
// (service/http_tier.hpp) are the *same protocol over different transports*:
// one formatter produces the `ok`/`values`/`error` lines, one parser decodes
// solve attributes and "."-terminated documents.  Byte-identical solve
// values across transports is a hard acceptance criterion of the serving
// tier, pinned by irfuzz's --http differential leg and the HTTP soak — this
// file is what makes it true by construction rather than by discipline.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/plan.hpp"
#include "core/serialize.hpp"
#include "obs/registry.hpp"
#include "service/request.hpp"

namespace ir::service::line_protocol {

using Value = std::uint64_t;
using Response = BasicResponse<Value>;

/// Engine attribute vocabulary of the solve command.
[[nodiscard]] std::optional<core::EngineChoice> engine_from_name(
    const std::string& name);

/// The default initial array when values=inline is absent: 1 + cell mod 97,
/// matching `irtool solve`.
[[nodiscard]] std::vector<Value> default_initial(std::size_t cells);

/// Order-sensitive xor-rotate checksum of a value array (the `checksum=`
/// field of ok lines).
[[nodiscard]] std::uint64_t values_checksum(const std::vector<Value>& values);

/// "ok id=... rid=... engine=... ... checksum=..." (no trailing newline).
[[nodiscard]] std::string ok_line(std::uint64_t id, const Response& response);

/// "values C v0 v1 ... v{C-1}" (no trailing newline).
[[nodiscard]] std::string values_line(const std::vector<Value>& values);

/// "error id=N status=S detail=D" with newlines in the detail flattened.
[[nodiscard]] std::string error_line(std::uint64_t id, Status status,
                                     std::string detail);

/// The one-line `stats` v2 reply: ledger + latency quantiles + the window
/// delta since the previous scrape of `window`.
[[nodiscard]] std::string stats_v2_line(const ServiceStats& stats,
                                        obs::ScrapeWindow& window);

/// The `drained <ledger>` reply with the balance verdict.
[[nodiscard]] std::string drained_line(const ServiceStats& stats);

/// Whitespace-split.
[[nodiscard]] std::vector<std::string> split_tokens(const std::string& line);

/// Consume one "."-terminated document from the front of `rest` (the string
/// form of irserve's read_document).  False when the terminator is missing.
[[nodiscard]] bool take_document(std::string_view& rest, std::string& doc);

/// Decoded attributes of a solve command (`id=`, `deadline_ms=`, `engine=`,
/// `values=inline`) — shared by the newline command line and the HTTP query
/// string.
struct SolveArgs {
  std::uint64_t id = 0;
  Clock::duration deadline{0};
  core::PlanOptions plan;
  bool inline_values = false;
};

/// Apply one key=value attribute.  False (with *error set) on an unknown
/// key or bad value.
[[nodiscard]] bool apply_solve_attr(const std::string& key,
                                    const std::string& value, SolveArgs* args,
                                    std::string* error);

/// Build a typed request from the parsed args + documents.  Throws
/// std::exception on a malformed system/values document (the caller answers
/// status=invalid with the message).
template <typename Request>
void fill_request(const SolveArgs& args, const std::string& sys_doc,
                  const std::string& values_doc, Request* out) {
  out->sys = core::system_from_text(sys_doc);
  if (args.inline_values) {
    const auto doubles = core::values_from_text(values_doc);
    out->initial.reserve(doubles.size());
    for (const double v : doubles) {
      out->initial.push_back(static_cast<Value>(v));
    }
  } else {
    out->initial = default_initial(out->sys.cells);
  }
  out->plan = args.plan;
  out->deadline = args.deadline;
}

}  // namespace ir::service::line_protocol
