// Consistent-hash ring (src/core/hash_ring.hpp): determinism, coverage,
// balance, and the minimal-churn property that justifies consistent hashing
// over `key % shards`.
#include "core/hash_ring.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

namespace ir::core {
namespace {

TEST(HashRing, SingleShardTakesEverything) {
  const HashRing ring(1);
  for (std::uint64_t key = 0; key < 1000; ++key) {
    EXPECT_EQ(ring.shard_for(key * 0x9e3779b97f4a7c15ull), 0u);
  }
}

TEST(HashRing, ZeroShardsClampsToOne) {
  const HashRing ring(0);
  EXPECT_EQ(ring.shard_count(), 1u);
  EXPECT_EQ(ring.shard_for(42), 0u);
}

TEST(HashRing, DeterministicAcrossInstances) {
  const HashRing a(8), b(8);
  for (std::uint64_t key = 0; key < 2000; ++key) {
    EXPECT_EQ(a.shard_for(key), b.shard_for(key));
  }
}

TEST(HashRing, EveryShardReceivesTraffic) {
  const HashRing ring(8);
  std::map<std::size_t, std::size_t> hits;
  for (std::uint64_t key = 0; key < 10'000; ++key) {
    hits[ring.shard_for(key * 1'000'003ull)] += 1;
  }
  ASSERT_EQ(hits.size(), 8u) << "some shard got zero keys";
  // With 64 vnodes per shard the imbalance should be mild: no shard under
  // a third of, or over three times, the fair share.
  const std::size_t fair = 10'000 / 8;
  for (const auto& [shard, count] : hits) {
    EXPECT_GT(count, fair / 3) << "shard " << shard << " starved";
    EXPECT_LT(count, fair * 3) << "shard " << shard << " overloaded";
  }
}

TEST(HashRing, GrowingTheRingMovesFewKeys) {
  // Consistent hashing's reason to exist: adding a shard remaps only the
  // keys the new shard takes over (~1/(n+1)), not a wholesale reshuffle.
  const HashRing before(8), after(9);
  std::size_t moved = 0;
  constexpr std::uint64_t kKeys = 20'000;
  for (std::uint64_t key = 0; key < kKeys; ++key) {
    const std::uint64_t spread = key * 0x9e3779b97f4a7c15ull;
    if (before.shard_for(spread) != after.shard_for(spread)) ++moved;
  }
  // Ideal churn is 1/9 ≈ 11%; vnode granularity wobbles it, so accept
  // anything clearly below the ~89% a modulo scheme would shuffle.
  EXPECT_LT(moved, kKeys / 3) << "churn too high for consistent hashing";
  EXPECT_GT(moved, 0u) << "the new shard took nothing";
}

TEST(HashRing, Mix64IsABijectionSpotCheck) {
  // mix64 must not collapse nearby keys (plan cache keys are often small
  // consecutive-ish integers).
  std::map<std::uint64_t, std::uint64_t> seen;
  for (std::uint64_t key = 0; key < 4096; ++key) {
    const std::uint64_t mixed = mix64(key);
    const auto [it, inserted] = seen.emplace(mixed, key);
    EXPECT_TRUE(inserted) << "mix64 collision: " << key << " vs " << it->second;
  }
}

}  // namespace
}  // namespace ir::core
