#!/usr/bin/env bash
# Full verification flow: tier-1 build + tests in the default (telemetry-ON)
# configuration, then a second configure/build/test pass with -DIR_TELEMETRY=OFF
# to prove the macros compile to no-ops and the solvers still pass.  Every
# configuration also runs the bounded differential fuzzer (irfuzz --smoke +
# --selftest), so the engine sweep and the shrinker are exercised on each pass.
#
# Usage: tools/verify.sh [--asan] [--lint] [--tidy] [--annotations] [--serve]
#                        [--store] [--http] [--bench-report] [build-dir-prefix]
#   (default prefix: build)
#   --asan   add a third pass built with -DIR_SANITIZE=address;undefined
#   --lint   statically certify every corpus witness and generated schedule
#            with `irtool lint` (exit 0 = certified, 1 = violation, 2 = usage),
#            the cost analyzer included (--cost), and whole-store-audit the
#            exported corpus plans (`irtool audit`: 0 = clean, 1 = rejects,
#            2 = usage/IO), plus a full test pass built with
#            -DIR_VERIFY_PLANS=ON so every plan the suite compiles goes
#            through the verifier on cache insert
#   --tidy   run clang-tidy (.clang-tidy profile) over src/ tools/ examples/
#            bench/ tests/ — skipped with a loud warning when run-clang-tidy
#            or clang-tidy is not installed
#   --annotations  build with clang and -DIR_THREAD_SAFETY=ON so the
#            capability annotations (src/support/thread_annotations.hpp) are
#            compiler-proved with -Wthread-safety promoted to errors —
#            skipped with a loud warning when clang++ is not installed
#   --serve  soak-smoke the irserve batch-solve frontend under injected-slow
#            load and deadline pressure (tools/serve_soak.sh) in every
#            configuration this invocation builds; the soak includes the
#            plan-store warm-start restart leg (docs/plan_store.md)
#   --http   exercise the multi-tenant HTTP tier in every configuration this
#            invocation builds: irfuzz's --http differential leg (random
#            systems round-tripped through POST /v1/solve, byte-compared
#            against the sequential oracle) plus the two-tenant irload soak
#            (tools/http_soak.sh — keep-alive, fair share, confined 429s,
#            balanced ledger)
#   --store  round-trip every corpus witness through the binary plan store:
#            irtool plan export into a store directory, re-import (full
#            validation + static verification) + info on every entry, prove a
#            corrupted entry is rejected, then run the warm-start serve soak
#            (skipped if --serve already ran it for this configuration)
#   --bench-report  run all four benches quick-mode with --report=BENCH_*.json
#            in both telemetry configurations, schema-validate the reports
#            (tools/check_bench_json.py), and diff them against the committed
#            baseline in bench/baseline/ (tools/bench_compare.py --warn-only;
#            warn-only because verify machines differ from the baseline host)
set -euo pipefail

cd "$(dirname "$0")/.."

ASAN=0
LINT=0
TIDY=0
ANNOTATIONS=0
SERVE=0
STORE=0
HTTP=0
BENCH_REPORT=0
PREFIX="build"
for arg in "$@"; do
  case "${arg}" in
    --asan) ASAN=1 ;;
    --lint) LINT=1 ;;
    --tidy) TIDY=1 ;;
    --annotations) ANNOTATIONS=1 ;;
    --serve) SERVE=1 ;;
    --store) STORE=1 ;;
    --http) HTTP=1 ;;
    --bench-report) BENCH_REPORT=1 ;;
    *) PREFIX="${arg}" ;;
  esac
done

# Plan-store round trip over the corpus: every witness exports, every export
# re-imports under full validation + static verification, and a flipped byte
# anywhere in an entry must be rejected before execution.
run_store_leg() {
  local dir="$1"
  local store="${dir}/plan-store-leg"
  rm -rf "${store}"
  for f in tests/corpus/*.ir; do
    "${dir}/examples/irtool" plan export "${f}" "${store}" >/dev/null
  done
  local count=0
  for p in "${store}"/*.irplan; do
    "${dir}/examples/irtool" plan import "${p}" >/dev/null
    "${dir}/examples/irtool" plan info "${p}" >/dev/null
    count=$((count + 1))
  done
  local victim bad
  victim="$(find "${store}" -name '*.irplan' | head -1)"
  bad="${dir}/plan-store-corrupt.irplan"
  cp "${victim}" "${bad}"
  printf '\xff' | dd of="${bad}" bs=1 seek=200 count=1 conv=notrunc 2>/dev/null
  if "${dir}/examples/irtool" plan import "${bad}" >/dev/null 2>&1; then
    echo "store leg: corrupted plan import unexpectedly succeeded" >&2
    exit 1
  fi
  echo "store leg: ${count} corpus plans exported + re-imported; corruption rejected"
  if [[ "${SERVE}" != "1" ]]; then
    tools/serve_soak.sh "${dir}"
  fi
}

# Quick-mode bench sweep writing BENCH_*.json into DIR/bench-reports, then
# schema validation + baseline comparison.
run_bench_reports() {
  local dir="$1"
  local out="${dir}/bench-reports"
  mkdir -p "${out}"
  "${dir}/bench/bench_plan_reuse" --smoke --report="${out}/BENCH_plan_reuse.json"
  "${dir}/bench/bench_service_throughput" --smoke \
      --report="${out}/BENCH_service_throughput.json"
  "${dir}/bench/bench_fig3_pram" --smoke --report="${out}/BENCH_fig3_pram.json"
  "${dir}/bench/bench_speedup_threads" --benchmark_min_time=0.01 \
      --benchmark_filter=/100000 --report="${out}/BENCH_speedup_threads.json" \
      >/dev/null
  python3 tools/check_bench_json.py "${out}"/BENCH_*.json
  python3 tools/bench_compare.py --warn-only bench/baseline "${out}"
}

run_suite() {
  local dir="$1"
  ctest --test-dir "${dir}" --output-on-failure -j"$(nproc)"
  "${dir}/tools/irfuzz" --smoke --corpus="${dir}/fuzz-corpus"
  "${dir}/tools/irfuzz" --selftest
  "${dir}/tools/irfuzz" tests/corpus/*.ir
  if [[ "${SERVE}" == "1" ]]; then
    tools/serve_soak.sh "${dir}"
  fi
  if [[ "${STORE}" == "1" ]]; then
    run_store_leg "${dir}"
  fi
  if [[ "${HTTP}" == "1" ]]; then
    "${dir}/tools/irfuzz" --http=24
    tools/http_soak.sh "${dir}"
  fi
}

echo "== telemetry ON: configure + build + ctest + irfuzz =="
cmake -B "${PREFIX}" -S . >/dev/null
cmake --build "${PREFIX}" -j"$(nproc)"
run_suite "${PREFIX}"

echo "== telemetry ON: bench_plan_reuse + bench_service_throughput smoke =="
"${PREFIX}/bench/bench_plan_reuse" --smoke --metrics="${PREFIX}/plan_reuse_smoke.json"
"${PREFIX}/bench/bench_service_throughput" --smoke --metrics="${PREFIX}/service_smoke.json"

if [[ "${BENCH_REPORT}" == "1" ]]; then
  echo "== telemetry ON: BENCH_*.json reports + schema check + baseline diff =="
  run_bench_reports "${PREFIX}"
fi

echo "== telemetry OFF: configure + build + ctest + irfuzz =="
cmake -B "${PREFIX}-notelemetry" -S . -DIR_TELEMETRY=OFF >/dev/null
cmake --build "${PREFIX}-notelemetry" -j"$(nproc)"
run_suite "${PREFIX}-notelemetry"

echo "== telemetry OFF: bench_plan_reuse + bench_service_throughput smoke =="
"${PREFIX}-notelemetry/bench/bench_plan_reuse" --smoke
"${PREFIX}-notelemetry/bench/bench_service_throughput" --smoke

if [[ "${BENCH_REPORT}" == "1" ]]; then
  echo "== telemetry OFF: BENCH_*.json reports + schema check + baseline diff =="
  run_bench_reports "${PREFIX}-notelemetry"
fi

if [[ "${LINT}" == "1" ]]; then
  echo "== lint: irtool lint --cost over corpus witnesses and generated systems =="
  for f in tests/corpus/*.ir; do
    "${PREFIX}/examples/irtool" lint "${f}" --cost
  done
  for spec in "chain 64" "fib 48" "random 40 7" "random 40 8"; do
    # shellcheck disable=SC2086  # word-splitting the spec is the point
    "${PREFIX}/examples/irtool" gen ${spec} | "${PREFIX}/examples/irtool" lint - --cost
  done

  echo "== lint: irtool audit over the exported corpus store =="
  audit_store="${PREFIX}/verify-audit-store"
  rm -rf "${audit_store}"
  for f in tests/corpus/*.ir; do
    "${PREFIX}/examples/irtool" plan export "${f}" "${audit_store}" >/dev/null
  done
  "${PREFIX}/examples/irtool" audit "${audit_store}"

  echo "== lint: IR_VERIFY_PLANS=ON build + ctest (verifier on every cache insert) =="
  cmake -B "${PREFIX}-verifyplans" -S . -DIR_VERIFY_PLANS=ON >/dev/null
  cmake --build "${PREFIX}-verifyplans" -j"$(nproc)"
  ctest --test-dir "${PREFIX}-verifyplans" --output-on-failure -j"$(nproc)"
fi

if [[ "${TIDY}" == "1" ]]; then
  if command -v run-clang-tidy >/dev/null 2>&1 && command -v clang-tidy >/dev/null 2>&1; then
    echo "== tidy: clang-tidy over src/ tools/ examples/ bench/ tests/ =="
    cmake -B "${PREFIX}-tidy" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
    run-clang-tidy -p "${PREFIX}-tidy" -quiet \
      "$(pwd)/(src|tools|examples|bench|tests)/.*\.cpp$"
  else
    echo "WARNING: --tidy requested but run-clang-tidy/clang-tidy is not installed;" >&2
    echo "WARNING: the clang-tidy leg was SKIPPED (CI runs it on every push)." >&2
  fi
fi

if [[ "${ANNOTATIONS}" == "1" ]]; then
  if command -v clang++ >/dev/null 2>&1; then
    echo "== annotations: clang -Wthread-safety build (violations are errors) =="
    cmake -B "${PREFIX}-threadsafety" -S . -DCMAKE_CXX_COMPILER=clang++ \
      -DIR_THREAD_SAFETY=ON >/dev/null
    cmake --build "${PREFIX}-threadsafety" -j"$(nproc)"
    ctest --test-dir "${PREFIX}-threadsafety" --output-on-failure -j"$(nproc)"
  else
    echo "WARNING: --annotations requested but clang++ is not installed;" >&2
    echo "WARNING: the -Wthread-safety leg was SKIPPED (CI runs it on every push)." >&2
  fi
fi

if [[ "${ASAN}" == "1" ]]; then
  echo "== ASan/UBSan: configure + build + ctest + irfuzz =="
  cmake -B "${PREFIX}-asan" -S . -DIR_SANITIZE="address;undefined" >/dev/null
  cmake --build "${PREFIX}-asan" -j"$(nproc)"
  run_suite "${PREFIX}-asan"
fi

echo "== verify: all green =="
