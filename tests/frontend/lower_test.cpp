// Exercises the deprecated one-shot shims (core/compat.hpp) on purpose;
// the define keeps -Werror builds green without losing the diagnostic
// elsewhere.
#define IR_COMPAT_ALLOW_DEPRECATED
#include "frontend/lower.hpp"

#include <gtest/gtest.h>

#include "algebra/monoids.hpp"
#include "core/classify.hpp"
#include "core/general_ir.hpp"
#include "core/compat.hpp"
#include "frontend/parser.hpp"

namespace ir::frontend {
namespace {

TEST(LowerTest, ChainLowersToExpectedMaps) {
  const auto program = parse_program(R"(
array A[5]
for i = 1 .. 4 {
  A[i] = A[i-1] . A[i]
}
)");
  const auto lowered = lower(program);
  EXPECT_EQ(lowered.system.cells, 5u);
  EXPECT_EQ(lowered.system.f, (std::vector<std::size_t>{0, 1, 2, 3}));
  EXPECT_EQ(lowered.system.g, (std::vector<std::size_t>{1, 2, 3, 4}));
  EXPECT_EQ(lowered.system.h, lowered.system.g);
  EXPECT_EQ(core::classify(lowered.system), core::LoopClass::kLinearRecurrence);
}

TEST(LowerTest, TwoDimensionalFlatteningIsRowMajor) {
  const auto program = parse_program(R"(
array X[4][3]
array Y[4][3]
for r = 0 .. 3 {
  for c = 0 .. 2 {
    X[r][c] = Y[r][c] . X[r][c]
  }
}
)");
  const auto lowered = lower(program);
  EXPECT_EQ(lowered.system.cells, 24u);
  // Y's block follows X's 12 cells.
  EXPECT_EQ(lowered.array_base, (std::vector<std::size_t>{0, 12}));
  // Equation for (r=1, c=2): target = X flat 1*3+2 = 5, lhs = Y base 12 + 5.
  const std::size_t eq = 1 * 3 + 2;
  EXPECT_EQ(lowered.system.g[eq], 5u);
  EXPECT_EQ(lowered.system.f[eq], 17u);
  // flat_cell agrees.
  const std::int64_t idx[] = {1, 2};
  EXPECT_EQ(lowered.flat_cell(program, 0, idx), 5u);
  EXPECT_EQ(lowered.flat_cell(program, 1, idx), 17u);
}

TEST(LowerTest, EquationMetadataRecorded) {
  const auto program = parse_program(R"(
array A[10]
array B[10]
for i = 1 .. 3 {
  A[i] = A[i-1] . A[i]
  B[i] = A[i] . B[i]
}
)");
  const auto lowered = lower(program);
  ASSERT_EQ(lowered.system.iterations(), 6u);
  EXPECT_EQ(lowered.equation_statement,
            (std::vector<std::size_t>{0, 1, 0, 1, 0, 1}));
  ASSERT_EQ(lowered.vars_per_equation, 1u);
  EXPECT_EQ(lowered.equation_vars, (std::vector<std::int64_t>{1, 1, 2, 2, 3, 3}));
}

TEST(LowerTest, TriangularBounds) {
  const auto program = parse_program(R"(
array A[40]
for i = 0 .. 3 {
  for k = 0 .. i {
    A[10*i + k + 1] = A[10*i + k] . A[10*i + k + 1]
  }
}
)");
  const auto lowered = lower(program);
  // 1 + 2 + 3 + 4 iterations.
  EXPECT_EQ(lowered.system.iterations(), 10u);
}

TEST(LowerTest, OutOfBoundsSubscriptDiagnosed) {
  const auto program = parse_program(R"(
array A[4]
for i = 0 .. 4 {
  A[i] = A[i] . A[i]
}
)");
  try {
    (void)lower(program);
    FAIL() << "expected throw";
  } catch (const support::ContractViolation& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("'A'"), std::string::npos);
    EXPECT_NE(what.find("i=4"), std::string::npos);
  }
}

TEST(LowerTest, EquationCapEnforced) {
  const auto program = parse_program(R"(
array A[4]
for i = 0 .. 3 {
  A[i] = A[i] . A[i]
}
)");
  LowerOptions options;
  options.max_equations = 2;
  EXPECT_THROW((void)lower(program, options), support::ContractViolation);
}

TEST(LowerTest, Loop23FragmentEndToEnd) {
  // Parse -> lower -> classify -> solve; compare against direct sequential
  // execution of the lowered system (the library's ground truth).
  const auto program = parse_program(R"(
array X[103][7]
for j = 1 .. 6 {
  for k = 1 .. 100 {
    X[k][j] = X[k-1][j] . X[k][j]
  }
}
)");
  const auto lowered = lower(program);
  // Per-column consecutive chains: semantically linear, ordinary-IR solvable.
  EXPECT_EQ(core::classify(lowered.system), core::LoopClass::kLinearRecurrence);

  algebra::ModMulMonoid op(1'000'000'007ull);
  std::vector<std::uint64_t> init(lowered.system.cells);
  for (std::size_t c = 0; c < init.size(); ++c) init[c] = 1 + c % 89;
  EXPECT_EQ(core::solve(op, lowered.system, init),
            core::general_ir_sequential(op, lowered.system, init));
}

TEST(LowerTest, FibonacciLowersToGeneral) {
  const auto program = parse_program(R"(
array A[30]
for i = 2 .. 29 {
  A[i] = A[i-1] . A[i-2]
}
)");
  const auto lowered = lower(program);
  EXPECT_EQ(core::classify(lowered.system), core::LoopClass::kGeneralIndexed);
  // And the exponents are Fibonacci numbers — tying the frontend to the
  // GIR machinery end to end.
  const auto exponents = core::general_ir_exponents(lowered.system);
  support::BigUint a(1), b(1);
  for (int i = 0; i < 27; ++i) {
    support::BigUint next = a + b;
    a = b;
    b = next;
  }
  EXPECT_EQ(exponents.back().back().second, b);
}

}  // namespace
}  // namespace ir::frontend
