#include "net/http_parser.hpp"

#include <algorithm>
#include <cctype>

namespace ir::net {

namespace {

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (auto& ch : out) ch = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
  return out;
}

std::string_view trim(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) {
    text.remove_prefix(1);
  }
  while (!text.empty() && (text.back() == ' ' || text.back() == '\t')) {
    text.remove_suffix(1);
  }
  return text;
}

bool is_token_char(char c) {
  // RFC 9110 token characters; enough to reject header names with spaces,
  // colons, or control bytes (request-smuggling vectors).
  static constexpr std::string_view extra = "!#$%&'*+-.^_`|~";
  const auto u = static_cast<unsigned char>(c);
  return std::isalnum(u) != 0 || extra.find(c) != std::string_view::npos;
}

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

const std::string* HttpRequest::header(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (key == name) return &value;
  }
  return nullptr;
}

std::string url_decode(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '+') {
      out.push_back(' ');
    } else if (text[i] == '%' && i + 2 < text.size() &&
               hex_value(text[i + 1]) >= 0 && hex_value(text[i + 2]) >= 0) {
      out.push_back(static_cast<char>(hex_value(text[i + 1]) * 16 +
                                      hex_value(text[i + 2])));
      i += 2;
    } else {
      out.push_back(text[i]);
    }
  }
  return out;
}

std::string HttpRequest::query_param(std::string_view key, bool* found) const {
  if (found != nullptr) *found = false;
  std::string_view rest = query;
  while (!rest.empty()) {
    const std::size_t amp = rest.find('&');
    const std::string_view pair =
        amp == std::string_view::npos ? rest : rest.substr(0, amp);
    rest = amp == std::string_view::npos ? std::string_view() : rest.substr(amp + 1);
    const std::size_t eq = pair.find('=');
    const std::string_view name = eq == std::string_view::npos ? pair : pair.substr(0, eq);
    if (name == key) {
      if (found != nullptr) *found = true;
      return eq == std::string_view::npos ? std::string()
                                          : url_decode(pair.substr(eq + 1));
    }
  }
  return std::string();
}

void HttpParser::fail(int status, std::string reason) {
  state_ = State::kError;
  error_status_ = status;
  error_reason_ = std::move(reason);
}

void HttpParser::reset() {
  state_ = State::kRequestLine;
  line_.clear();
  header_bytes_ = 0;
  body_expected_ = 0;
  request_ = HttpRequest{};
  error_status_ = 0;
  error_reason_.clear();
}

bool HttpParser::take_line(std::string_view& data, std::size_t& used,
                           std::size_t cap, int status, const char* what) {
  const std::size_t nl = data.find('\n');
  const std::size_t take = nl == std::string_view::npos ? data.size() : nl + 1;
  if (line_.size() + take > cap + 2) {  // +2 allows the CR LF of a full line
    used += take;
    fail(status, std::string(what) + " exceeds limit");
    return false;
  }
  line_.append(data.substr(0, take));
  data.remove_prefix(take);
  used += take;
  if (nl == std::string_view::npos) return false;  // need more bytes
  line_.pop_back();                                // '\n'
  if (!line_.empty() && line_.back() == '\r') line_.pop_back();
  return true;
}

void HttpParser::parse_request_line() {
  const std::string line = std::move(line_);
  line_.clear();
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                                   : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos ||
      line.find(' ', sp2 + 1) != std::string::npos) {
    fail(400, "malformed request line");
    return;
  }
  request_.method = line.substr(0, sp1);
  request_.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string version = line.substr(sp2 + 1);
  if (request_.method.empty() ||
      !std::all_of(request_.method.begin(), request_.method.end(), is_token_char)) {
    fail(400, "malformed method");
    return;
  }
  if (request_.target.empty()) {
    fail(400, "empty request target");
    return;
  }
  if (version == "HTTP/1.1") {
    request_.version_minor = 1;
  } else if (version == "HTTP/1.0") {
    request_.version_minor = 0;
  } else {
    fail(505, "unsupported protocol version '" + version + "'");
    return;
  }
  const std::size_t q = request_.target.find('?');
  request_.path = request_.target.substr(0, q);
  request_.query =
      q == std::string::npos ? std::string() : request_.target.substr(q + 1);
  state_ = State::kHeaders;
}

void HttpParser::parse_header_line() {
  const std::string line = std::move(line_);
  line_.clear();
  if (line.empty()) {
    finish_headers();
    return;
  }
  if (line.front() == ' ' || line.front() == '\t') {
    // Obsolete line folding: a smuggling vector, never legitimate from the
    // clients this tier serves.
    fail(400, "obsolete header line folding");
    return;
  }
  if (request_.headers.size() >= limits_.max_headers) {
    fail(431, "too many header fields");
    return;
  }
  const std::size_t colon = line.find(':');
  if (colon == std::string::npos || colon == 0) {
    fail(400, "malformed header field");
    return;
  }
  const std::string_view raw_name = std::string_view(line).substr(0, colon);
  if (!std::all_of(raw_name.begin(), raw_name.end(), is_token_char)) {
    fail(400, "malformed header name");
    return;
  }
  request_.headers.emplace_back(
      to_lower(raw_name), std::string(trim(std::string_view(line).substr(colon + 1))));
}

void HttpParser::finish_headers() {
  // Connection semantics first: the error responses the server sends for a
  // bad body still want the right keep-alive default.
  request_.keep_alive = request_.version_minor >= 1;
  if (const std::string* connection = request_.header("connection")) {
    const std::string value = to_lower(*connection);
    if (value.find("close") != std::string::npos) request_.keep_alive = false;
    if (value.find("keep-alive") != std::string::npos) request_.keep_alive = true;
  }

  const std::string* transfer = request_.header("transfer-encoding");
  const std::string* length = request_.header("content-length");
  if (transfer != nullptr) {
    if (to_lower(*transfer) != "chunked") {
      fail(501, "unsupported transfer coding '" + *transfer + "'");
      return;
    }
    if (length != nullptr) {
      // Both framings present is the classic request-smuggling ambiguity;
      // reject rather than pick a winner.
      fail(400, "both content-length and transfer-encoding present");
      return;
    }
    request_.chunked = true;
    state_ = State::kChunkSize;
    return;
  }
  if (length != nullptr) {
    std::uint64_t value = 0;
    if (length->empty()) {
      fail(400, "empty content-length");
      return;
    }
    for (const char c : *length) {
      if (c < '0' || c > '9' || value > (UINT64_MAX - 9) / 10) {
        fail(400, "malformed content-length '" + *length + "'");
        return;
      }
      value = value * 10 + static_cast<std::uint64_t>(c - '0');
    }
    if (value > limits_.max_body_bytes) {
      fail(413, "body of " + std::to_string(value) + " bytes exceeds limit");
      return;
    }
    if (value == 0) {
      state_ = State::kComplete;
      return;
    }
    body_expected_ = static_cast<std::size_t>(value);
    request_.body.reserve(body_expected_);
    state_ = State::kFixedBody;
    return;
  }
  state_ = State::kComplete;  // no body
}

void HttpParser::parse_chunk_size_line() {
  std::string line = std::move(line_);
  line_.clear();
  // Chunk extensions (";name=value") are legal noise; ignore them.
  const std::size_t semi = line.find(';');
  if (semi != std::string::npos) line.resize(semi);
  while (!line.empty() && (line.back() == ' ' || line.back() == '\t')) line.pop_back();
  if (line.empty()) {
    fail(400, "empty chunk size");
    return;
  }
  std::uint64_t size = 0;
  for (const char c : line) {
    const int digit = hex_value(c);
    if (digit < 0 || size > (UINT64_MAX >> 4)) {
      fail(400, "malformed chunk size '" + line + "'");
      return;
    }
    size = (size << 4) | static_cast<std::uint64_t>(digit);
  }
  if (request_.body.size() + size > limits_.max_body_bytes) {
    fail(413, "chunked body exceeds limit");
    return;
  }
  if (size == 0) {
    state_ = State::kTrailers;
    return;
  }
  body_expected_ = static_cast<std::size_t>(size);
  state_ = State::kChunkData;
}

std::size_t HttpParser::feed(std::string_view data) {
  std::size_t used = 0;
  while (!data.empty() && state_ != State::kComplete && state_ != State::kError) {
    switch (state_) {
      case State::kRequestLine:
        if (take_line(data, used, limits_.max_request_line, 431,
                      "request line")) {
          // A bare CRLF before the request line is tolerated (RFC 9112 §2.2:
          // robust servers skip it) — common after a previous request's body.
          if (line_.empty()) continue;
          parse_request_line();
        }
        break;
      case State::kHeaders:
        // take_line caps any single line at the block limit; completed lines
        // accumulate into header_bytes_ so many small headers trip it too.
        if (take_line(data, used, limits_.max_header_bytes, 431, "header block")) {
          header_bytes_ += line_.size() + 2;
          if (header_bytes_ > limits_.max_header_bytes) {
            fail(431, "header block exceeds limit");
            break;
          }
          parse_header_line();
        }
        break;
      case State::kFixedBody: {
        const std::size_t take = std::min(body_expected_, data.size());
        request_.body.append(data.substr(0, take));
        data.remove_prefix(take);
        used += take;
        body_expected_ -= take;
        if (body_expected_ == 0) state_ = State::kComplete;
        break;
      }
      case State::kChunkSize:
        // A chunk-size line is tiny; reuse the request-line cap.
        if (take_line(data, used, limits_.max_request_line, 400, "chunk size line")) {
          parse_chunk_size_line();
        }
        break;
      case State::kChunkData: {
        const std::size_t take = std::min(body_expected_, data.size());
        request_.body.append(data.substr(0, take));
        data.remove_prefix(take);
        used += take;
        body_expected_ -= take;
        if (body_expected_ == 0) state_ = State::kChunkDataEnd;
        break;
      }
      case State::kChunkDataEnd:
        if (take_line(data, used, 2, 400, "chunk terminator")) {
          if (!line_.empty()) {
            fail(400, "chunk data not followed by CRLF");
            break;
          }
          state_ = State::kChunkSize;
        }
        break;
      case State::kTrailers:
        // Trailer fields are accepted and discarded; the blank line ends the
        // request.  The header-block limit bounds them.
        if (take_line(data, used, limits_.max_header_bytes, 431, "trailer block")) {
          header_bytes_ += line_.size() + 2;
          if (header_bytes_ > limits_.max_header_bytes) {
            fail(431, "trailer block exceeds limit");
            break;
          }
          const bool end = line_.empty();
          line_.clear();
          if (end) state_ = State::kComplete;
        }
        break;
      case State::kComplete:
      case State::kError:
        break;
    }
  }
  return used;
}

}  // namespace ir::net
