// bench_plan_reuse — what the plan/execute split buys when one system is
// solved many times (the inspector/executor amortization argument).
//
// For each ordinary engine (jumping, blocked, SPMD) at a fixed n and K:
//
//   cold     K full solves: compile_plan + execute_plan every repetition
//            (what every pre-plan API call paid)
//   warm     compile_plan once, then K execute_plan calls on the same plan
//   batched  compile_plan once, then one execute_many over K value arrays
//            (executions themselves run in parallel where legal)
//   wide     compile_plan once, then ONE execute_wide over a K-lane SoA
//            batch — every schedule entry loaded once, row ops SIMD-eligible
//
//   store    restart simulation: the plan persisted to an on-disk store
//            (core/plan_io.hpp), then a fresh Solver with an EMPTY cache
//            solves K times — the first solve is a verified zero-copy load
//            from disk instead of a compile, the rest are cache hits, and
//            the whole sequence must run with plan_compiles() == 0
//
// and prints one row per engine with the cold/warm and warm/wide speedups.
// Acceptance targets: warm >= 1.5x cold on jumping, and wide >= 2x the
// per-k execute_plan loop (warm), both at n = 50,000, K = 16.
//
// A second section pits the chain fast route (the scan engine the router
// picks for f(i) = i-1 systems) against forced jumping on the same chain:
// the O(n) sweep must beat the O(n log n) jump schedule at n >= 100,000.
//
//   bench_plan_reuse [--smoke] [--n=N] [--k=K] [--threads=T] [--metrics=FILE]
//
// --smoke shrinks the workload (n = 2,000, K = 4) so CI can run the bench as
// a correctness/telemetry exercise without meaningful wall-clock cost;
// --metrics=FILE dumps the telemetry registry plus the measured seconds.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "algebra/monoids.hpp"
#include "bench_report.hpp"
#include "core/plan.hpp"
#include "core/plan_io.hpp"
#include "core/solver.hpp"
#include "obs/metrics_export.hpp"
#include "parallel/thread_pool.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"
#include "testing_workloads.hpp"

namespace {

using namespace ir;

struct CaseResult {
  std::string engine;
  double cold_seconds = 0.0;
  double warm_seconds = 0.0;     // compile once + K executes (compile included)
  double batched_seconds = 0.0;  // compile once + execute_many (compile included)
  double wide_seconds = 0.0;     // compile once + one K-lane execute_wide
  std::vector<double> cold_ns;   // per-repetition samples for the report
  std::vector<double> warm_ns;
};

CaseResult run_case(core::EngineChoice engine, const std::string& name,
                    const core::OrdinaryIrSystem& sys,
                    const std::vector<std::uint64_t>& init, std::size_t repeats,
                    parallel::ThreadPool& pool) {
  const auto op = algebra::AddMonoid<std::uint64_t>{};
  core::PlanOptions plan_options;
  plan_options.engine = engine;
  plan_options.pool = &pool;
  core::ExecOptions exec;
  exec.pool = &pool;
  exec.workers = pool.size();  // SPMD executor only

  CaseResult result;
  result.engine = name;
  std::vector<std::uint64_t> out;
  support::Stopwatch watch;

  watch.lap();
  for (std::size_t rep = 0; rep < repeats; ++rep) {
    support::Stopwatch rep_watch;
    rep_watch.lap();
    const core::Plan plan = core::compile_plan(sys, plan_options);
    out = core::execute_plan(plan, op, init, exec);
    result.cold_ns.push_back(rep_watch.lap() * 1e9);
  }
  result.cold_seconds = watch.lap();

  {
    const core::Plan plan = core::compile_plan(sys, plan_options);
    for (std::size_t rep = 0; rep < repeats; ++rep) {
      support::Stopwatch rep_watch;
      rep_watch.lap();
      out = core::execute_plan(plan, op, init, exec);
      result.warm_ns.push_back(rep_watch.lap() * 1e9);
    }
  }
  result.warm_seconds = watch.lap();

  {
    const core::Plan plan = core::compile_plan(sys, plan_options);
    std::vector<std::vector<std::uint64_t>> initials(repeats, init);
    auto outs = core::execute_many(plan, op, std::move(initials), exec);
    out = std::move(outs.back());
  }
  result.batched_seconds = watch.lap();

  {
    // The batch-first path: ONE lockstep execute_wide over a K-lane SoA
    // batch.  Plan compile and the rows->SoA transpose stay outside the
    // timed region — a batch-first caller reuses its plan (like `warm`,
    // whose per-rep samples time execute_plan only) and holds its values in
    // SoA natively; from_rows is the legacy-shape adapter, not the API.
    const core::Plan plan = core::compile_plan(sys, plan_options);
    auto batch = core::BatchView<std::uint64_t>::from_rows(
        std::vector<std::vector<std::uint64_t>>(repeats, init), plan.cells);
    watch.lap();
    auto wide_out = core::execute_wide(plan, op, std::move(batch), exec);
    result.wide_seconds = watch.lap();
    for (std::size_t c = 0; c < plan.cells; ++c) {
      out[c] = wide_out.at(c, repeats - 1);
    }
  }

  // Keep `out` observable so the solves cannot be optimized away.
  std::uint64_t checksum = 0;
  for (const auto v : out) checksum ^= v;
  double warm_exec_seconds = 0.0;  // execute-only, compile excluded
  for (const double ns : result.warm_ns) warm_exec_seconds += ns / 1e9;
  std::printf("%-8s n=%zu K=%zu cold=%.4fs warm=%.4fs batched=%.4fs wide=%.4fs"
              " speedup=%.2fx wide_speedup=%.2fx (checksum %llu)\n",
              name.c_str(), sys.iterations(), repeats, result.cold_seconds,
              result.warm_seconds, result.batched_seconds, result.wide_seconds,
              result.cold_seconds / result.warm_seconds,
              warm_exec_seconds / result.wide_seconds,
              static_cast<unsigned long long>(checksum));
  return result;
}

struct StoreResult {
  std::string engine;
  double store_seconds = 0.0;    // K solves after restart, zero compiles
  std::vector<double> store_ns;  // per-repetition samples (first = the load)
};

/// The warm-start-from-store leg.  Populate the store with one write-through
/// compile, then simulate a process restart: a fresh Solver with an empty
/// plan cache solves K times against the store.  Rep 0 pays the verified
/// mmap load (header + checksum + static verifier + zero-copy table borrow);
/// reps 1..K-1 are in-memory cache hits.  Zero compiles, enforced.
StoreResult run_store_case(core::EngineChoice engine, const std::string& name,
                           const core::OrdinaryIrSystem& sys,
                           const std::vector<std::uint64_t>& init,
                           std::size_t repeats, parallel::ThreadPool& pool,
                           const std::string& store_dir) {
  const auto op = algebra::AddMonoid<std::uint64_t>{};
  core::PlanOptions plan_options;
  plan_options.engine = engine;
  plan_options.pool = &pool;
  core::ExecOptions exec;
  exec.pool = &pool;
  exec.workers = pool.size();  // SPMD executor only

  {
    core::PlanStore seed_store(store_dir);
    core::SolverConfig config;
    config.plan_store = &seed_store;
    core::Solver solver(config);
    (void)solver.compile(sys, plan_options);  // write-through populates the store
  }

  core::PlanStore store(store_dir);
  core::SolverConfig config;
  config.plan_store = &store;
  config.store_writes = false;
  core::Solver solver(config);

  StoreResult result;
  result.engine = name;
  std::vector<std::uint64_t> out;
  support::Stopwatch watch;
  watch.lap();
  for (std::size_t rep = 0; rep < repeats; ++rep) {
    support::Stopwatch rep_watch;
    rep_watch.lap();
    const auto plan = solver.compile(sys, plan_options);
    out = solver.execute(*plan, op, init, exec);
    result.store_ns.push_back(rep_watch.lap() * 1e9);
  }
  result.store_seconds = watch.lap();

  if (solver.plan_compiles() != 0 || store.hits() != 1) {
    std::fprintf(stderr,
                 "store leg %s broke its contract: %llu compiles, %llu store "
                 "hits (want 0 and 1)\n",
                 name.c_str(),
                 static_cast<unsigned long long>(solver.plan_compiles()),
                 static_cast<unsigned long long>(store.hits()));
    std::exit(1);
  }

  std::uint64_t checksum = 0;
  for (const auto v : out) checksum ^= v;
  std::printf("%-8s n=%zu K=%zu store=%.4fs first-load=%.4fms (0 compiles, "
              "checksum %llu)\n",
              name.c_str(), sys.iterations(), repeats, result.store_seconds,
              result.store_ns.front() / 1e6,
              static_cast<unsigned long long>(checksum));
  return result;
}

struct ChainLeg {
  std::string label;
  double warm_seconds = 0.0;
  std::vector<double> warm_ns;
};

/// The chain section: auto (scan) vs forced jumping on A[i+1] := A[i]+A[i+1].
std::vector<ChainLeg> run_chain_case(std::size_t chain_n, std::size_t repeats,
                                     parallel::ThreadPool& pool) {
  const auto op = algebra::AddMonoid<std::uint64_t>{};
  core::OrdinaryIrSystem chain;
  chain.cells = chain_n + 1;
  for (std::size_t i = 0; i < chain_n; ++i) {
    chain.f.push_back(i);
    chain.g.push_back(i + 1);
  }
  support::SplitMix64 rng(chain_n ^ 0xc4a1u);
  const std::vector<std::uint64_t> init =
      ir::bench::random_initial_u64(chain.cells, rng);

  struct Spec {
    const char* label;
    core::EngineChoice engine;
  };
  std::vector<ChainLeg> legs;
  std::vector<std::uint64_t> reference_out;
  for (const Spec& spec : {Spec{"chain-scan", core::EngineChoice::kAuto},
                           Spec{"chain-jumping", core::EngineChoice::kJumping}}) {
    core::PlanOptions plan_options;
    plan_options.engine = spec.engine;
    plan_options.pool = &pool;
    core::ExecOptions exec;
    exec.pool = &pool;
    const core::Plan plan = core::compile_plan(chain, plan_options);
    ChainLeg leg;
    leg.label = spec.label;
    std::vector<std::uint64_t> out;
    support::Stopwatch watch;
    watch.lap();
    for (std::size_t rep = 0; rep < repeats; ++rep) {
      support::Stopwatch rep_watch;
      rep_watch.lap();
      out = core::execute_plan(plan, op, init, exec);
      leg.warm_ns.push_back(rep_watch.lap() * 1e9);
    }
    leg.warm_seconds = watch.lap();
    std::uint64_t checksum = 0;
    for (const auto v : out) checksum ^= v;
    std::printf("%-14s n=%zu K=%zu engine=%s warm=%.4fs (checksum %llu)\n",
                leg.label.c_str(), chain_n, repeats,
                core::to_string(plan.engine).c_str(), leg.warm_seconds,
                static_cast<unsigned long long>(checksum));
    if (reference_out.empty()) {
      reference_out = out;
    } else if (out != reference_out) {
      std::fprintf(stderr, "chain legs disagree: %s output differs\n",
                   leg.label.c_str());
      std::exit(1);
    }
    legs.push_back(std::move(leg));
  }
  return legs;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t n = 50'000;
  std::size_t repeats = 16;
  std::size_t threads = parallel::ThreadPool::default_threads();
  bool smoke = false;
  std::string metrics_file;
  std::string report_file;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--smoke") {
      smoke = true;
      n = 2'000;
      repeats = 4;
    } else if (arg.rfind("--n=", 0) == 0) {
      n = std::strtoull(arg.c_str() + 4, nullptr, 10);
    } else if (arg.rfind("--k=", 0) == 0) {
      repeats = std::strtoull(arg.c_str() + 4, nullptr, 10);
    } else if (arg.rfind("--threads=", 0) == 0) {
      threads = std::strtoull(arg.c_str() + 10, nullptr, 10);
    } else if (arg.rfind("--metrics=", 0) == 0) {
      metrics_file = arg.substr(10);
    } else if (arg.rfind("--report=", 0) == 0) {
      report_file = arg.substr(9);
    } else {
      std::fprintf(stderr,
                   "usage: bench_plan_reuse [--smoke] [--n=N] [--k=K]"
                   " [--threads=T] [--metrics=FILE] [--report=FILE]\n");
      return 2;
    }
  }

  support::SplitMix64 rng(n);
  const core::OrdinaryIrSystem sys = ir::bench::random_ordinary_system(n, n + n / 2, rng, 0.9);
  const std::vector<std::uint64_t> init = ir::bench::random_initial_u64(n + n / 2, rng);
  parallel::ThreadPool pool(threads);

  std::printf("# plan-once/execute-K vs K cold solves (threads=%zu)\n", pool.size());
  std::vector<CaseResult> rows;
  rows.push_back(run_case(core::EngineChoice::kJumping, "jumping", sys, init, repeats, pool));
  rows.push_back(run_case(core::EngineChoice::kBlocked, "blocked", sys, init, repeats, pool));
  rows.push_back(run_case(core::EngineChoice::kSpmd, "spmd", sys, init, repeats, pool));

  // Warm start from an on-disk plan store: persist, "restart", solve K times
  // with zero compiles (the per-engine contract is enforced inside the leg).
  const std::string store_dir =
      (std::filesystem::temp_directory_path() /
       ("bench_plan_store_" + std::to_string(static_cast<unsigned long>(rng.next()))))
          .string();
  std::printf("# warm start from plan store (%s)\n", store_dir.c_str());
  std::vector<StoreResult> store_rows;
  store_rows.push_back(
      run_store_case(core::EngineChoice::kJumping, "jumping", sys, init, repeats, pool, store_dir));
  store_rows.push_back(
      run_store_case(core::EngineChoice::kBlocked, "blocked", sys, init, repeats, pool, store_dir));
  store_rows.push_back(
      run_store_case(core::EngineChoice::kSpmd, "spmd", sys, init, repeats, pool, store_dir));
  std::filesystem::remove_all(store_dir);

  // The chain fast route must beat log-depth jumping at n >= 100,000; smoke
  // keeps the same shape at a CI-friendly size.
  const std::size_t chain_n = smoke ? 4'000 : std::max<std::size_t>(2 * n, 100'000);
  std::printf("# chain fast route: scan vs forced jumping\n");
  const std::vector<ChainLeg> chain_legs = run_chain_case(chain_n, repeats, pool);

  if (!metrics_file.empty()) {
    obs::ExtraFields extra = {
        {"bench", obs::json_quote("plan_reuse")},
        {"n", std::to_string(n)},
        {"repeats", std::to_string(repeats)},
        {"threads", std::to_string(pool.size())},
    };
    for (const auto& row : rows) {
      extra.emplace_back(row.engine + "_cold_seconds", std::to_string(row.cold_seconds));
      extra.emplace_back(row.engine + "_warm_seconds", std::to_string(row.warm_seconds));
      extra.emplace_back(row.engine + "_batched_seconds",
                         std::to_string(row.batched_seconds));
      extra.emplace_back(row.engine + "_wide_seconds", std::to_string(row.wide_seconds));
    }
    for (const auto& row : store_rows) {
      extra.emplace_back(row.engine + "_store_seconds", std::to_string(row.store_seconds));
    }
    for (const auto& leg : chain_legs) {
      extra.emplace_back(leg.label + "_warm_seconds", std::to_string(leg.warm_seconds));
    }
    obs::write_metrics_file(metrics_file, extra);
    std::fprintf(stderr, "metrics written to %s\n", metrics_file.c_str());
  }
  if (!report_file.empty()) {
    ir::bench::BenchReport report("plan_reuse");
    report.set_config("n", n);
    report.set_config("k", repeats);
    report.set_config("threads", pool.size());
    for (const auto& row : rows) {
      report.add_variant(row.engine + "/cold", row.cold_ns);
      report.add_variant(row.engine + "/warm", row.warm_ns);
      // execute_many is one wall measurement over K arrays — one per-op
      // sample (wall / K), not a distribution.
      report.add_variant(
          row.engine + "/batched",
          {row.batched_seconds * 1e9 / static_cast<double>(repeats)});
      // execute_wide is likewise one wall measurement over a K-lane batch.
      report.add_variant(row.engine + "/wide",
                         {row.wide_seconds * 1e9 / static_cast<double>(repeats)});
    }
    for (const auto& row : store_rows) {
      report.add_variant(row.engine + "/store-warm", row.store_ns);
    }
    report.set_config("chain_n", chain_n);
    for (const auto& leg : chain_legs) {
      report.add_variant(leg.label + "/warm", leg.warm_ns);
    }
    report.write(report_file);
    std::fprintf(stderr, "bench report written to %s\n", report_file.c_str());
  }
  return 0;
}
