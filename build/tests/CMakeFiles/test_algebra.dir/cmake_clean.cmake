file(REMOVE_RECURSE
  "CMakeFiles/test_algebra.dir/algebra/modular_test.cpp.o"
  "CMakeFiles/test_algebra.dir/algebra/modular_test.cpp.o.d"
  "CMakeFiles/test_algebra.dir/algebra/moebius_test.cpp.o"
  "CMakeFiles/test_algebra.dir/algebra/moebius_test.cpp.o.d"
  "CMakeFiles/test_algebra.dir/algebra/monoids_test.cpp.o"
  "CMakeFiles/test_algebra.dir/algebra/monoids_test.cpp.o.d"
  "test_algebra"
  "test_algebra.pdb"
  "test_algebra[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_algebra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
