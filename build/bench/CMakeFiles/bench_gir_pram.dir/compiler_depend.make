# Empty compiler generated dependencies file for bench_gir_pram.
# This may be replaced when dependencies are built.
