#include "graph/cap.hpp"

#include <gtest/gtest.h>

#include <map>

#include "support/rng.hpp"

namespace ir::graph {
namespace {

using support::BigUint;

/// counts[v] as a map for order-independent comparison.
std::map<NodeId, BigUint> as_map(const std::vector<Edge>& edges) {
  std::map<NodeId, BigUint> m;
  for (const auto& e : edges) m[e.to] += e.label;
  return m;
}

TEST(CapTest, SingleEdge) {
  LabeledDag g(2);
  g.add_edge(0, 1);
  const auto cap = cap_closure(g);
  EXPECT_EQ(as_map(cap.counts[0]), (std::map<NodeId, BigUint>{{1, 1}}));
  EXPECT_EQ(as_map(cap.counts[1]), (std::map<NodeId, BigUint>{{1, 1}}));  // leaf self
}

TEST(CapTest, PathMultiplication) {
  // Paper Figure 7: i -[x]-> k -[y]-> j collapses to i -[x*y]-> j.
  LabeledDag g(3);
  g.add_edge(0, 1, PathCount{3});
  g.add_edge(1, 2, PathCount{5});
  const auto cap = cap_closure(g);
  EXPECT_EQ(as_map(cap.counts[0]), (std::map<NodeId, BigUint>{{2, 15}}));
}

TEST(CapTest, PathAddition) {
  // Paper Figure 8: parallel edges merge by summing labels.
  LabeledDag g(2);
  g.add_edge(0, 1, PathCount{2});
  g.add_edge(0, 1, PathCount{7});
  const auto cap = cap_closure(g);
  EXPECT_EQ(as_map(cap.counts[0]), (std::map<NodeId, BigUint>{{1, 9}}));
}

TEST(CapTest, DiamondCountsBothPaths) {
  //    0 -> 1 -> 3, 0 -> 2 -> 3: two paths from 0 to leaf 3.
  LabeledDag g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  const auto cap = cap_closure(g);
  EXPECT_EQ(as_map(cap.counts[0]), (std::map<NodeId, BigUint>{{3, 2}}));
}

TEST(CapTest, DoubleChainGivesPowersOfTwo) {
  // Paper's CAP example: a double chain v0 => v1 => ... => v_{n-1}
  // (two edges per hop) has 2^(n-1-i) paths from v_i to the leaf.
  const std::size_t n = 9;
  LabeledDag g(n);
  for (std::size_t v = 0; v + 1 < n; ++v) {
    g.add_edge(v, v + 1);
    g.add_edge(v, v + 1);
  }
  const auto cap = cap_closure(g);
  for (std::size_t v = 0; v + 1 < n; ++v) {
    EXPECT_EQ(as_map(cap.counts[v]),
              (std::map<NodeId, BigUint>{{n - 1, BigUint::pow(BigUint(2), n - 1 - v)}}))
        << "node " << v;
  }
}

TEST(CapTest, FibonacciChain) {
  // The paper's GIR motivator A[i] := A[i-1]*A[i-2]: node i points at i-1
  // and i-2; the path counts to the two leaves are Fibonacci numbers.
  const std::size_t n = 40;
  LabeledDag g(n);
  for (std::size_t i = 2; i < n; ++i) {
    g.add_edge(i, i - 1);
    g.add_edge(i, i - 2);
  }
  const auto cap = cap_closure(g);
  std::vector<BigUint> fib(n);
  fib[0] = 1;
  fib[1] = 1;
  for (std::size_t i = 2; i < n; ++i) fib[i] = fib[i - 1] + fib[i - 2];
  for (std::size_t i = 2; i < n; ++i) {
    // paths(i -> leaf 1) = fib(i-1), paths(i -> leaf 0) = fib(i-2).
    EXPECT_EQ(as_map(cap.counts[i]),
              (std::map<NodeId, BigUint>{{0, fib[i - 2]}, {1, fib[i - 1]}}))
        << "node " << i;
  }
}

TEST(CapTest, RoundsAreLogarithmic) {
  // A single chain of length 256 must close in ~log2(256) rounds.
  const std::size_t n = 257;
  LabeledDag g(n);
  for (std::size_t v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
  const auto cap = cap_closure(g);
  EXPECT_LE(cap.rounds, 9u);
  EXPECT_GE(cap.rounds, 8u);
  EXPECT_EQ(as_map(cap.counts[0]), (std::map<NodeId, BigUint>{{n - 1, 1}}));
}

TEST(CapTest, CyclicGraphRejected) {
  LabeledDag g(2);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  EXPECT_THROW(cap_closure(g), support::ContractViolation);
}

TEST(CapTest, IsolatedNodesAreLeaves) {
  LabeledDag g(3);
  g.add_edge(0, 1);
  const auto cap = cap_closure(g);
  EXPECT_EQ(as_map(cap.counts[2]), (std::map<NodeId, BigUint>{{2, 1}}));
}

TEST(CapTest, DeferredCoalescingMatches) {
  LabeledDag g(6);
  g.add_edge(5, 4);
  g.add_edge(5, 3);
  g.add_edge(4, 3);
  g.add_edge(4, 2);
  g.add_edge(3, 1);
  g.add_edge(3, 0);
  g.add_edge(2, 0);
  CapOptions eager, deferred;
  deferred.coalesce_each_round = false;
  const auto a = cap_closure(g, eager);
  const auto b = cap_closure(g, deferred);
  for (NodeId v = 0; v < 6; ++v) EXPECT_EQ(as_map(a.counts[v]), as_map(b.counts[v]));
  EXPECT_GE(b.peak_edges, a.peak_edges);
}

TEST(CapTest, ParallelPoolMatchesSequential) {
  support::SplitMix64 rng(77);
  LabeledDag g(64);
  for (NodeId v = 1; v < 64; ++v) {
    const std::size_t fanout = 1 + rng.below(3);
    for (std::size_t e = 0; e < fanout; ++e) {
      g.add_edge(v, rng.below(v));  // edges point to strictly smaller ids: acyclic
    }
  }
  parallel::ThreadPool pool(4);
  CapOptions with_pool;
  with_pool.pool = &pool;
  const auto seq = cap_closure(g);
  const auto par = cap_closure(g, with_pool);
  for (NodeId v = 0; v < 64; ++v) EXPECT_EQ(as_map(seq.counts[v]), as_map(par.counts[v]));
}

TEST(CapTest, MatchesReferenceDpOnRandomDags) {
  for (std::uint64_t seed : {1u, 9u, 23u, 51u}) {
    support::SplitMix64 rng(seed);
    const std::size_t n = 40;
    LabeledDag g(n);
    for (NodeId v = 1; v < n; ++v) {
      const std::size_t fanout = rng.below(4);  // some nodes become leaves
      for (std::size_t e = 0; e < fanout; ++e) {
        g.add_edge(v, rng.below(v), PathCount{1 + rng.below(3)});
      }
    }
    const auto cap = cap_closure(g);
    const auto reference = path_counts_reference(g);
    for (NodeId v = 0; v < n; ++v) {
      EXPECT_EQ(as_map(cap.counts[v]), as_map(reference[v])) << "seed " << seed
                                                             << " node " << v;
    }
  }
}

TEST(CapTest, MatchesExhaustiveEnumerationOnTinyDags) {
  support::SplitMix64 rng(5);
  const std::size_t n = 10;
  LabeledDag g(n);
  for (NodeId v = 1; v < n; ++v) {
    const std::size_t fanout = rng.below(3);
    for (std::size_t e = 0; e < fanout; ++e) {
      g.add_edge(v, rng.below(v), PathCount{1 + rng.below(2)});
    }
  }
  const auto cap = cap_closure(g);
  for (NodeId v = 0; v < n; ++v) {
    for (const auto& e : cap.counts[v]) {
      if (e.to == v) continue;  // leaf self-entry
      EXPECT_EQ(e.label, count_paths_exhaustive(g, v, e.to));
    }
  }
}

TEST(CapTest, ExponentialCountsNeedBigUint) {
  // 120-node double chain: 2^119 paths — far beyond 64 bits.
  const std::size_t n = 120;
  LabeledDag g(n);
  for (std::size_t v = 0; v + 1 < n; ++v) {
    g.add_edge(v, v + 1);
    g.add_edge(v, v + 1);
  }
  const auto cap = cap_closure(g);
  const auto counts = as_map(cap.counts[0]);
  ASSERT_EQ(counts.size(), 1u);
  EXPECT_FALSE(counts.begin()->second.fits_u64());
  EXPECT_EQ(counts.begin()->second, BigUint::pow(BigUint(2), 119));
}

}  // namespace
}  // namespace ir::graph
