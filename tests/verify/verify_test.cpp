// The static plan verifier tested from both sides: every plan the compiler
// actually produces (corpus witnesses, generator sweep, every forced route)
// must certify clean, and hand-corrupted schedules must be rejected with the
// right violation code and (round, move, cell) coordinates.  The operand-swap
// test is the reason the symbolic family exists: a commutative differential
// run provably cannot see the bug the free-monoid replay flags.
#include "verify/verify.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "algebra/monoids.hpp"
#include "core/analyze.hpp"
#include "core/general_ir.hpp"
#include "core/ordinary_ir.hpp"
#include "core/plan.hpp"
#include "core/serialize.hpp"
#include "testing/differential.hpp"
#include "testing/generators.hpp"

namespace ir::verify {
namespace {

using core::EngineChoice;
using core::GeneralIrSystem;
using core::OrdinaryIrSystem;
using core::Plan;
using core::PlanOptions;

/// The forced-engine legs that fit `sys`, mirroring irtool lint: auto and
/// GIR always apply, the ordinary engines need h = g and injective writes,
/// elementwise needs a dependence-free system.
std::vector<std::pair<EngineChoice, const char*>> applicable_routes(
    const GeneralIrSystem& sys) {
  std::vector<std::pair<EngineChoice, const char*>> routes = {
      {EngineChoice::kAuto, "auto"}, {EngineChoice::kGeneralCap, "gir"}};
  const core::SystemReport report = core::analyze(sys);
  if (sys.h == sys.g && report.repeated_writes == 0) {
    routes.emplace_back(EngineChoice::kJumping, "jumping");
    routes.emplace_back(EngineChoice::kBlocked, "blocked");
    routes.emplace_back(EngineChoice::kSpmd, "spmd");
  }
  if (report.dependences == 0) {
    routes.emplace_back(EngineChoice::kElementwise, "elementwise");
  }
  return routes;
}

void expect_certified_on_every_route(const GeneralIrSystem& sys,
                                     const std::string& context) {
  for (const auto& [engine, label] : applicable_routes(sys)) {
    PlanOptions options;
    options.engine = engine;
    options.blocks = 3;
    const Plan plan = core::compile_plan(sys, options);
    const VerifyReport report = verify_plan(plan, sys);
    EXPECT_TRUE(report.ok())
        << context << " route " << label << ": " << report.summary();
    EXPECT_GE(report.checks_run, 3u) << context << " route " << label;
  }
}

/// Find a violation by code; ADD_FAILURE and return nullptr if absent.
const Violation* find_violation(const VerifyReport& report, const std::string& code) {
  for (const auto& v : report.violations) {
    if (v.code == code) return &v;
  }
  ADD_FAILURE() << "expected violation '" << code << "', got: " << report.summary();
  return nullptr;
}

TEST(VerifyCorpusTest, EveryCorpusWitnessCertifiesOnEveryRoute) {
  const std::filesystem::path dir(IR_CORPUS_DIR);
  ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
  std::size_t witnesses = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".ir") continue;
    std::ifstream in(entry.path());
    ASSERT_TRUE(in.good()) << entry.path();
    std::ostringstream buffer;
    buffer << in.rdbuf();
    expect_certified_on_every_route(core::system_from_text(buffer.str()),
                                    entry.path().filename().string());
    ++witnesses;
  }
  EXPECT_GE(witnesses, 5u) << "corpus went missing";
}

TEST(VerifySweepTest, GeneratedPlansCertifyAcrossShapesAndRoutes) {
  support::SplitMix64 rng(4242);
  testing::GeneratorLimits limits;
  limits.max_iterations = 32;
  for (std::size_t k = 0; k < 24; ++k) {
    const auto shape = testing::kAllShapeClasses[k % testing::kAllShapeClasses.size()];
    const auto c = testing::generate_case(shape, rng, limits);
    expect_certified_on_every_route(
        c.sys, std::string(testing::to_string(shape)) + " case " + std::to_string(k));
  }
}

TEST(VerifySweepTest, DifferentialVerifyLegsStayCleanAndRun) {
  support::SplitMix64 rng(515);
  testing::GeneratorLimits limits;
  limits.max_iterations = 24;
  testing::DifferentialOptions options;
  options.verify_plans = true;
  for (std::size_t k = 0; k < 8; ++k) {
    const auto c = testing::generate_case(
        testing::kAllShapeClasses[k % testing::kAllShapeClasses.size()], rng, limits);
    const auto report = testing::run_differential(c.sys, options);
    EXPECT_TRUE(report.ok()) << "case " << k << ": " << report.summary();
  }
}

/// A[i+1] := A[i] ⊙ A[i+1]: one unbroken chain, the deepest jumping
/// schedule a given n can produce.
OrdinaryIrSystem chain_system(std::size_t n) {
  OrdinaryIrSystem sys;
  sys.cells = n + 1;
  for (std::size_t i = 0; i < n; ++i) {
    sys.f.push_back(i);
    sys.g.push_back(i + 1);
  }
  sys.validate();
  return sys;
}

TEST(VerifyRejectionTest, SameRoundWriteWriteConflictRejectedWithCoordinates) {
  const OrdinaryIrSystem sys = chain_system(12);
  PlanOptions options;
  options.engine = EngineChoice::kJumping;
  Plan plan = core::compile_plan(sys, options);
  ASSERT_GE(plan.jump.rounds(), 2u);

  // Pick the first round with at least two moves and alias the second move's
  // destination onto the first — a textbook CRCW write the CREW schedule
  // must never contain.
  std::size_t round = kNoCoord;
  for (std::size_t r = 0; r < plan.jump.rounds(); ++r) {
    const auto [begin, end] = plan.jump.round_span(r);
    if (end - begin >= 2) {
      round = r;
      plan.jump.dst[begin + 1] = plan.jump.dst[begin];
      break;
    }
  }
  ASSERT_NE(round, kNoCoord) << "chain plan has no wide round";

  const VerifyReport report = verify_plan(plan, sys);
  ASSERT_FALSE(report.ok());
  const Violation* v = find_violation(report, "jump.write-write");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->family, CheckFamily::kHazard);
  EXPECT_EQ(v->round, round);
  EXPECT_NE(v->move, kNoCoord);
  const auto [begin, end] = plan.jump.round_span(round);
  EXPECT_EQ(v->cell, static_cast<std::size_t>(plan.jump.dst[begin]));
  // The human message carries the coordinates too — that is the contract the
  // acceptance criterion cares about.
  EXPECT_NE(v->message.find("round"), std::string::npos) << v->message;
}

TEST(VerifyRejectionTest, OperandOrderSwapInvisibleToCommutativeDiffButCaughtSymbolically) {
  // Dependence-free system with f != h everywhere: the elementwise schedule
  // stores both read cells per slot, so swapping them is exactly the operand
  // reordering a buggy schedule builder could commit.
  GeneralIrSystem sys;
  sys.cells = 8;
  sys.f = {4, 5, 6};
  sys.g = {0, 1, 2};
  sys.h = {5, 6, 7};
  sys.validate();

  PlanOptions options;
  options.engine = EngineChoice::kElementwise;
  Plan plan = core::compile_plan(sys, options);
  ASSERT_EQ(plan.engine, core::PlanEngine::kElementwise);
  ASSERT_FALSE(plan.elementwise.f.empty());
  ASSERT_NE(plan.elementwise.f[0], plan.elementwise.h[0]);
  std::swap(plan.elementwise.f[0], plan.elementwise.h[0]);

  // A commutative differential run cannot see the swap: the corrupted plan
  // still produces the sequential answer under ModMul.
  const algebra::ModMulMonoid op(1'000'000'007ull);
  std::vector<std::uint64_t> init(sys.cells);
  for (std::size_t c = 0; c < sys.cells; ++c) init[c] = 2 * c + 3;
  EXPECT_EQ(core::execute_plan(plan, op, init),
            core::general_ir_sequential(op, sys, init));

  // The free-monoid replay is not commutative, so it is a hard mismatch.
  const VerifyReport report = verify_plan(plan, sys);
  ASSERT_FALSE(report.ok());
  const Violation* v = find_violation(report, "symbolic.order-mismatch");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->family, CheckFamily::kSymbolic);
  EXPECT_EQ(v->cell, 0u);  // the swapped slot writes cell g[0] = 0
}

TEST(VerifyRejectionTest, FingerprintAndReportTamperingFlagged) {
  const OrdinaryIrSystem sys = chain_system(6);
  Plan plan = core::compile_plan(sys);

  Plan wrong_fp = plan;
  wrong_fp.fingerprint ^= 1;
  const VerifyReport fp_report = verify_plan(wrong_fp, sys);
  EXPECT_FALSE(fp_report.ok());
  EXPECT_NE(find_violation(fp_report, "plan.fingerprint-mismatch"), nullptr);

  Plan stale = plan;
  stale.report.dependences += 1;
  const VerifyReport stale_report = verify_plan(stale, sys);
  EXPECT_FALSE(stale_report.ok());
  EXPECT_NE(find_violation(stale_report, "plan.report-stale"), nullptr);
}

TEST(VerifyRejectionTest, OutOfBoundsScheduleIndexStopsDeeperChecks) {
  const OrdinaryIrSystem sys = chain_system(6);
  PlanOptions options;
  options.engine = EngineChoice::kJumping;
  Plan plan = core::compile_plan(sys, options);
  ASSERT_FALSE(plan.jump.src.empty());
  plan.jump.src[0] = 0x7fffffffu;  // far outside m cells

  const VerifyReport report = verify_plan(plan, sys);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(find_violation(report, "jump.src-bounds"), nullptr);
  // Unsound tables gate the deeper families: no hazard/symbolic pass may
  // index through a table that just failed its bounds check.
  for (const auto& v : report.violations) {
    EXPECT_EQ(v.family, CheckFamily::kPrecondition) << v.code;
  }
}

TEST(VerifyRejectionTest, BlockedFixupWriteWriteRejectedWithBlockCoordinates) {
  const OrdinaryIrSystem sys = chain_system(12);
  PlanOptions options;
  options.engine = EngineChoice::kBlocked;
  options.blocks = 3;
  Plan plan = core::compile_plan(sys, options);

  // An unbroken chain makes every equation of blocks 1..2 partial, so each
  // later block has a multi-entry fix-up slice to corrupt.
  std::size_t block = kNoCoord;
  for (std::size_t b = 0; b < plan.blocked.blocks.size(); ++b) {
    const auto [begin, end] = plan.blocked.fix_span(b);
    if (end - begin >= 2) {
      block = b;
      plan.blocked.fix_dst[begin + 1] = plan.blocked.fix_dst[begin];
      break;
    }
  }
  ASSERT_NE(block, kNoCoord) << "blocked plan has no multi-entry fix-up slice";

  const VerifyReport report = verify_plan(plan, sys);
  ASSERT_FALSE(report.ok());
  const Violation* v = find_violation(report, "blocked.fixup-write-write");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->family, CheckFamily::kHazard);
  EXPECT_EQ(v->round, block);
  EXPECT_NE(v->move, kNoCoord);
}

TEST(VerifyReportTest, JsonCarriesVerdictEngineAndCodes) {
  const OrdinaryIrSystem sys = chain_system(8);
  PlanOptions options;
  options.engine = EngineChoice::kJumping;
  Plan plan = core::compile_plan(sys, options);

  const std::string clean = verify_plan(plan, sys).to_json();
  EXPECT_NE(clean.find("\"ok\": true"), std::string::npos) << clean;
  EXPECT_NE(clean.find("\"engine\": \"jumping\""), std::string::npos) << clean;
  EXPECT_NE(clean.find("\"violations\": []"), std::string::npos) << clean;

  plan.jump.dst[1] = plan.jump.dst[0];  // round 0 always has >= 2 moves here
  const std::string bad = verify_plan(plan, sys).to_json();
  EXPECT_NE(bad.find("\"ok\": false"), std::string::npos) << bad;
  EXPECT_NE(bad.find("\"code\": \"jump.write-write\""), std::string::npos) << bad;
  EXPECT_NE(bad.find("\"family\": \"hazard\""), std::string::npos) << bad;
}

TEST(VerifyOptionsTest, SymbolicBudgetSkipsButStillCertifiesHazards) {
  const OrdinaryIrSystem sys = chain_system(32);
  Plan plan = core::compile_plan(sys);
  VerifyOptions options;
  options.max_symbolic_terms = 4;  // far below the chain's term volume
  const VerifyReport report = verify_plan(plan, sys, options);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_TRUE(report.symbolic_skipped);
  EXPECT_FALSE(report.symbolic_skip_reason.empty());
}

TEST(VerifyOptionsTest, ViolationCapTruncatesReport) {
  const OrdinaryIrSystem sys = chain_system(12);
  PlanOptions plan_options;
  plan_options.engine = EngineChoice::kJumping;
  Plan plan = core::compile_plan(sys, plan_options);
  // Alias every destination in the widest round: many write-write pairs.
  const auto [begin, end] = plan.jump.round_span(0);
  for (std::size_t k = begin + 1; k < end; ++k) plan.jump.dst[k] = plan.jump.dst[begin];

  VerifyOptions options;
  options.max_violations = 2;
  const VerifyReport report = verify_plan(plan, sys, options);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.truncated);
  EXPECT_LE(report.violations.size(), 2u);
}

}  // namespace
}  // namespace ir::verify
