// Quickstart: define an ordinary indexed recurrence, inspect its traces
// (paper Lemma 1 / Figures 1-2), and solve it sequentially and in parallel.
//
//   $ ./quickstart
#include <cstdio>

#include "algebra/monoids.hpp"
#include "core/ordinary_ir.hpp"
#include "core/solver.hpp"
#include "core/trace.hpp"

int main() {
  using namespace ir;

  // The loop  for i = 0..3:  A[g(i)] := A[f(i)] . A[g(i)]
  // over 8 cells, with chains that grow through f hitting earlier g's:
  core::OrdinaryIrSystem sys;
  sys.cells = 8;
  sys.f = {0, 1, 3, 2};
  sys.g = {1, 3, 5, 7};

  std::printf("Ordinary IR system: %zu equations over %zu cells\n", sys.iterations(),
              sys.cells);
  std::printf("loop body: A[g(i)] := A[f(i)] * A[g(i)]\n\n");

  // Lemma 1: every final value is an ordered product of initial elements.
  const auto traces = core::ordinary_final_traces(sys);
  std::printf("final-array traces (paper Figure 1):\n");
  for (std::size_t x = 0; x < sys.cells; ++x) {
    std::printf("  A'[%zu] = %s\n", x, core::render_trace(traces[x]).c_str());
  }

  // Solve with a non-commutative operator to show order preservation:
  // string concatenation makes the trace visible in the output itself.
  std::vector<std::string> labels(sys.cells);
  for (std::size_t c = 0; c < sys.cells; ++c) labels[c] = std::string(1, char('a' + c));
  const algebra::ConcatMonoid cat;

  const auto sequential = core::ordinary_ir_sequential(cat, sys, labels);

  // Compile once, execute many: the plan owns the whole schedule, so
  // repeated solves (and batches) never re-touch the index maps.
  core::Solver solver;
  const auto plan = solver.compile(sys);
  const auto parallel = solver.execute(*plan, cat, labels);

  std::printf("\ncompiled plan: %s\n", plan->describe().c_str());
  std::printf("sequential vs plan execute:\n");
  for (std::size_t x = 0; x < sys.cells; ++x) {
    std::printf("  A'[%zu]: \"%s\" vs \"%s\"%s\n", x, sequential[x].c_str(),
                parallel[x].c_str(), sequential[x] == parallel[x] ? "" : "  MISMATCH");
  }

  // And with plain numbers on a deep chain — the router detects the
  // f(i) = i-1 structure and takes the O(n) scan fast route.
  core::OrdinaryIrSystem chain;
  chain.cells = 1001;
  for (std::size_t i = 0; i < 1000; ++i) {
    chain.f.push_back(i);
    chain.g.push_back(i + 1);
  }
  const auto chain_plan = solver.compile(chain);
  std::printf("\nchain plan: %s\n", chain_plan->describe().c_str());

  // Batch-first execute: K value-sets in one SoA batch, solved in lockstep
  // by the wide executor (execute_wide.hpp).
  const std::size_t kLanes = 4;
  core::BatchView<std::uint64_t> batch(chain.cells, kLanes);
  for (std::size_t cell = 0; cell < chain.cells; ++cell) {
    for (std::size_t lane = 0; lane < kLanes; ++lane) batch.at(cell, lane) = lane + 1;
  }
  const auto wide = solver.execute_many(*chain_plan, algebra::AddMonoid<std::uint64_t>{},
                                        std::move(batch));
  std::printf("1000-deep chain, %zu lanes wide; A'[1000] per lane:", kLanes);
  for (std::size_t lane = 0; lane < kLanes; ++lane) {
    std::printf(" %llu", static_cast<unsigned long long>(wide.at(1000, lane)));
  }
  std::printf("  (expect 1001, 2002, 3003, 4004)\n");
  return 0;
}
