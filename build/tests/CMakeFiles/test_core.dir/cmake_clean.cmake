file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/analyze_test.cpp.o"
  "CMakeFiles/test_core.dir/core/analyze_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/classify_test.cpp.o"
  "CMakeFiles/test_core.dir/core/classify_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/general_ir_pram_test.cpp.o"
  "CMakeFiles/test_core.dir/core/general_ir_pram_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/general_ir_test.cpp.o"
  "CMakeFiles/test_core.dir/core/general_ir_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/inspector_test.cpp.o"
  "CMakeFiles/test_core.dir/core/inspector_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/ir_problem_test.cpp.o"
  "CMakeFiles/test_core.dir/core/ir_problem_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/linear_ir_test.cpp.o"
  "CMakeFiles/test_core.dir/core/linear_ir_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/ordinary_ir_blocked_test.cpp.o"
  "CMakeFiles/test_core.dir/core/ordinary_ir_blocked_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/ordinary_ir_pram_test.cpp.o"
  "CMakeFiles/test_core.dir/core/ordinary_ir_pram_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/ordinary_ir_spmd_test.cpp.o"
  "CMakeFiles/test_core.dir/core/ordinary_ir_spmd_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/ordinary_ir_test.cpp.o"
  "CMakeFiles/test_core.dir/core/ordinary_ir_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/serialize_test.cpp.o"
  "CMakeFiles/test_core.dir/core/serialize_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/solve_test.cpp.o"
  "CMakeFiles/test_core.dir/core/solve_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/trace_test.cpp.o"
  "CMakeFiles/test_core.dir/core/trace_test.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
