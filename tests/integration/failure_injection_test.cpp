// Failure injection: operators that throw mid-computation.  Solvers must
// propagate the exception (including across thread-pool and SPMD workers)
// and leave the runtime reusable afterwards.
// Exercises the deprecated one-shot shims (core/compat.hpp) on purpose;
// the define keeps -Werror builds green without losing the diagnostic
// elsewhere.
#define IR_COMPAT_ALLOW_DEPRECATED
#include <gtest/gtest.h>

#include <atomic>

#include "algebra/monoids.hpp"
#include "core/general_ir.hpp"
#include "core/ordinary_ir.hpp"
#include "core/ordinary_ir_blocked.hpp"
#include "core/compat.hpp"
#include "testing/random_systems.hpp"

namespace ir {
namespace {

/// Adds like AddMonoid but throws on the k-th combine() (global count).
struct FusedMonoid {
  using Value = std::uint64_t;
  static constexpr bool is_commutative = true;

  std::atomic<std::size_t>* counter;
  std::size_t fuse;

  Value combine(Value a, Value b) const {
    if (counter->fetch_add(1) + 1 == fuse) throw std::runtime_error("fuse blown");
    return a + b;
  }
  Value pow(Value a, const support::BigUint& k) const {
    return algebra::AddMonoid<std::uint64_t>{}.pow(a, k);
  }
};

class FailureInjectionTest : public ::testing::Test {
 protected:
  std::atomic<std::size_t> counter{0};
  support::SplitMix64 rng{171};
  core::OrdinaryIrSystem sys = testing::random_ordinary_system(400, 600, rng, 0.9);
  std::vector<std::uint64_t> init = testing::random_initial_u64(600, rng);

  FusedMonoid fused(std::size_t fuse) {
    counter = 0;
    return FusedMonoid{&counter, fuse};
  }
};

TEST_F(FailureInjectionTest, SequentialPropagates) {
  EXPECT_THROW((void)core::ordinary_ir_sequential(fused(10), sys, init),
               std::runtime_error);
}

TEST_F(FailureInjectionTest, JumpingPropagatesAndPoolSurvives) {
  parallel::ThreadPool pool(3);
  core::OrdinaryIrOptions options;
  options.pool = &pool;
  EXPECT_THROW((void)core::ordinary_ir_parallel(fused(50), sys, init, options),
               std::runtime_error);
  // The pool must remain usable: run the real solve afterwards.
  const auto op = algebra::AddMonoid<std::uint64_t>{};
  EXPECT_EQ(core::ordinary_ir_parallel(op, sys, init, options),
            core::ordinary_ir_sequential(op, sys, init));
}

TEST_F(FailureInjectionTest, BlockedPropagates) {
  core::BlockedIrOptions options;
  options.blocks = 8;
  EXPECT_THROW((void)core::ordinary_ir_blocked(fused(50), sys, init, options),
               std::runtime_error);
}

TEST_F(FailureInjectionTest, SpmdPropagatesWithoutDeadlock) {
  EXPECT_THROW((void)core::ordinary_ir_spmd(fused(50), sys, init, 3),
               std::runtime_error);
  // And a clean run still works on fresh workers.
  const auto op = algebra::AddMonoid<std::uint64_t>{};
  EXPECT_EQ(core::ordinary_ir_spmd(op, sys, init, 3),
            core::ordinary_ir_sequential(op, sys, init));
}

TEST_F(FailureInjectionTest, GirEvaluationPropagates) {
  const auto gir = core::GeneralIrSystem::from_ordinary(sys);
  EXPECT_THROW((void)core::general_ir_parallel(fused(20), gir, init),
               std::runtime_error);
}

TEST_F(FailureInjectionTest, LateFuseMeansSuccess) {
  // A fuse beyond the total combine count must not fire.
  const auto op = fused(1u << 30);
  EXPECT_EQ(core::ordinary_ir_parallel(op, sys, init),
            core::ordinary_ir_sequential(algebra::AddMonoid<std::uint64_t>{}, sys, init));
}

}  // namespace
}  // namespace ir
