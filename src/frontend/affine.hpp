// Affine expressions over loop variables.
//
// The paper's loops address arrays through affine subscripts —
// g(i) = 7(i-1)+j for Livermore 23 — and its IR frame requires the index
// maps to be data-independent.  AffineExpr is that restricted expression
// language: constant + Σ coeffᵥ·varᵥ, evaluated against a vector of loop
// variable values during lowering (frontend/lower.hpp).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "support/contract.hpp"

namespace ir::frontend {

/// constant + Σ coeff·var, with variables identified by index into the
/// enclosing loop nest (outermost = 0).
class AffineExpr {
 public:
  AffineExpr() = default;

  /// The constant expression c.
  static AffineExpr constant(std::int64_t c) {
    AffineExpr e;
    e.constant_ = c;
    return e;
  }

  /// The expression coeff·var.
  static AffineExpr variable(std::size_t var, std::int64_t coeff = 1) {
    AffineExpr e;
    if (coeff != 0) e.terms_.push_back({var, coeff});
    return e;
  }

  /// Add another expression in place.
  AffineExpr& operator+=(const AffineExpr& rhs);

  /// Subtract another expression in place.
  AffineExpr& operator-=(const AffineExpr& rhs);

  /// Scale by an integer in place.
  AffineExpr& operator*=(std::int64_t factor);

  friend AffineExpr operator+(AffineExpr a, const AffineExpr& b) { return a += b; }
  friend AffineExpr operator-(AffineExpr a, const AffineExpr& b) { return a -= b; }
  friend AffineExpr operator*(AffineExpr a, std::int64_t f) { return a *= f; }

  /// Evaluate with the given variable values (index = variable id).
  [[nodiscard]] std::int64_t evaluate(std::span<const std::int64_t> vars) const;

  /// Largest variable id referenced + 1 (0 when constant).
  [[nodiscard]] std::size_t variables_needed() const noexcept;

  [[nodiscard]] std::int64_t constant_part() const noexcept { return constant_; }
  [[nodiscard]] const std::vector<std::pair<std::size_t, std::int64_t>>& terms()
      const noexcept {
    return terms_;
  }

  /// True iff no variable has a non-zero coefficient.
  [[nodiscard]] bool is_constant() const noexcept { return terms_.empty(); }

  /// Render, e.g. "2*k + j - 1" given names for the variables.
  [[nodiscard]] std::string to_string(std::span<const std::string> var_names) const;

  /// Rewrite every variable v as permutation[v] (used by loop transforms
  /// when nest positions — and hence variable ids — change).
  [[nodiscard]] AffineExpr remap_variables(std::span<const std::size_t> permutation) const;

  friend bool operator==(const AffineExpr&, const AffineExpr&) = default;

 private:
  void normalize();

  std::int64_t constant_ = 0;
  std::vector<std::pair<std::size_t, std::int64_t>> terms_;  // sorted by var id
};

}  // namespace ir::frontend
