// Telemetry macro surface — the ONLY header instrumented code includes.
//
// Build-time gate: the CMake option IR_TELEMETRY (default ON) defines
// IR_TELEMETRY_ENABLED to 1 or 0 for every target.  With the option OFF all
// macros below expand to no-ops that evaluate none of their arguments, so
// the hot paths carry no obs symbols and no atomic traffic — the disabled
// build must link and solve identically (tests/obs/telemetry_mode_test.cpp
// asserts this in both configurations).
//
// Macro catalog (names are the metric/span names in docs/observability.md):
//
//   IR_SPAN("name");                  scoped span, RAII for the block
//   IR_COUNTER_ADD("name", delta);    monotone counter += delta
//   IR_GAUGE_MAX("name", value);      gauge = max(gauge, value)
//   IR_HISTOGRAM("name", value);      one sample into power-of-two buckets
//   IR_SET_THREAD_NAME(name);         Chrome-trace track title (std::string)
//
// Span/metric NAMES must be string literals (the span keeps the pointer;
// the metric handle is a function-local static resolved on first hit, so
// the name is read once per call site).
#pragma once

#ifndef IR_TELEMETRY_ENABLED
#define IR_TELEMETRY_ENABLED 1
#endif

#if IR_TELEMETRY_ENABLED

#include "obs/registry.hpp"
#include "obs/span.hpp"

#define IR_OBS_CONCAT_INNER(a, b) a##b
#define IR_OBS_CONCAT(a, b) IR_OBS_CONCAT_INNER(a, b)

#define IR_SPAN(name) \
  ::ir::obs::ScopedSpan IR_OBS_CONCAT(ir_obs_span_, __LINE__)(name)

#define IR_COUNTER_ADD(name, delta)                                     \
  do {                                                                  \
    static ::ir::obs::Counter IR_OBS_CONCAT(ir_obs_counter_, __LINE__) = \
        ::ir::obs::registry().counter(name);                            \
    IR_OBS_CONCAT(ir_obs_counter_, __LINE__).add(delta);                \
  } while (false)

#define IR_GAUGE_MAX(name, value)                                     \
  do {                                                                \
    static ::ir::obs::Gauge IR_OBS_CONCAT(ir_obs_gauge_, __LINE__) =  \
        ::ir::obs::registry().gauge(name);                            \
    IR_OBS_CONCAT(ir_obs_gauge_, __LINE__).record_max(value);         \
  } while (false)

#define IR_HISTOGRAM(name, value)                                         \
  do {                                                                    \
    static ::ir::obs::Histogram IR_OBS_CONCAT(ir_obs_histogram_, __LINE__) = \
        ::ir::obs::registry().histogram(name);                            \
    IR_OBS_CONCAT(ir_obs_histogram_, __LINE__).record(value);             \
  } while (false)

#define IR_SET_THREAD_NAME(name) ::ir::obs::set_thread_name(name)

#else  // !IR_TELEMETRY_ENABLED

// No-op expansions.  Arguments are NOT evaluated; (void)sizeof silences
// unused-variable warnings without generating code.
#define IR_SPAN(name) \
  do {                \
  } while (false)

#define IR_COUNTER_ADD(name, delta) \
  do {                              \
    (void)sizeof(delta);            \
  } while (false)

#define IR_GAUGE_MAX(name, value) \
  do {                            \
    (void)sizeof(value);          \
  } while (false)

#define IR_HISTOGRAM(name, value) \
  do {                            \
    (void)sizeof(value);          \
  } while (false)

#define IR_SET_THREAD_NAME(name) \
  do {                           \
    (void)sizeof(name);          \
  } while (false)

#endif  // IR_TELEMETRY_ENABLED
