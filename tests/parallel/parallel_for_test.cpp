#include "parallel/parallel_for.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace ir::parallel {
namespace {

TEST(PartitionBlocksTest, CoversRangeExactly) {
  for (std::size_t n : {0u, 1u, 5u, 16u, 17u, 1000u}) {
    for (std::size_t parts : {1u, 2u, 3u, 7u, 64u}) {
      const auto blocks = partition_blocks(n, parts);
      std::size_t covered = 0, expect_begin = 0;
      for (const auto& b : blocks) {
        EXPECT_EQ(b.begin, expect_begin);
        EXPECT_LT(b.begin, b.end);
        covered += b.end - b.begin;
        expect_begin = b.end;
      }
      EXPECT_EQ(covered, n);
      EXPECT_LE(blocks.size(), std::min(parts, n == 0 ? std::size_t{0} : n));
    }
  }
}

TEST(PartitionBlocksTest, BlocksAreBalanced) {
  const auto blocks = partition_blocks(103, 10);
  std::size_t lo = 1000, hi = 0;
  for (const auto& b : blocks) {
    lo = std::min(lo, b.end - b.begin);
    hi = std::max(hi, b.end - b.begin);
  }
  EXPECT_LE(hi - lo, 1u);
}

TEST(PartitionBlocksTest, RejectsZeroParts) {
  EXPECT_THROW(partition_blocks(10, 0), support::ContractViolation);
}

TEST(ParallelForTest, VisitsEachIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, 1000, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, EmptyRange) {
  ThreadPool pool(2);
  parallel_for(pool, 0, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(ParallelForTest, MatchesSequentialSum) {
  ThreadPool pool(8);
  std::vector<long> data(10000);
  parallel_for(pool, data.size(), [&](std::size_t i) { data[i] = static_cast<long>(i * i); });
  long expect = 0;
  for (std::size_t i = 0; i < data.size(); ++i) expect += static_cast<long>(i * i);
  EXPECT_EQ(std::accumulate(data.begin(), data.end(), 0L), expect);
}

TEST(ParallelForBlocksTest, WorkerIdsAreDistinct) {
  ThreadPool pool(4);
  std::mutex mutex;
  std::vector<std::size_t> workers;
  parallel_for_blocks(pool, 100, [&](const Block& b) {
    std::lock_guard lock(mutex);
    workers.push_back(b.worker);
  });
  std::sort(workers.begin(), workers.end());
  for (std::size_t w = 0; w < workers.size(); ++w) EXPECT_EQ(workers[w], w);
}

TEST(ParallelForCappedTest, CapLimitsBlockCount) {
  ThreadPool pool(8);
  std::atomic<int> blocks{0};
  parallel_for_blocks(pool, 100, [&](const Block&) { ++blocks; });
  EXPECT_LE(blocks.load(), 8);

  // Capped at 3: even with 8 threads only 3 blocks exist.
  std::vector<std::atomic<int>> hits(100);
  parallel_for_capped(pool, 100, 3, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_THROW(parallel_for_capped(pool, 10, 0, [](std::size_t) {}),
               support::ContractViolation);
}

TEST(ParallelForTest, ExceptionPropagates) {
  ThreadPool pool(4);
  EXPECT_THROW(parallel_for(pool, 100,
                            [](std::size_t i) {
                              if (i == 57) throw std::runtime_error("item 57");
                            }),
               std::runtime_error);
}

}  // namespace
}  // namespace ir::parallel
