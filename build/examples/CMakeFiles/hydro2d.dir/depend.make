# Empty dependencies file for hydro2d.
# This may be replaced when dependencies are built.
