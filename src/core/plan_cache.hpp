// Content-addressed LRU cache of compiled plans.
//
// Keys are plan_cache_key(system, options) — pure functions of the system's
// serialized bytes and the structure-affecting option knobs *of the resolved
// route*, so two textually identical systems share one plan, any content
// mutation (or relevant routing knob) misses, and knobs the resolved route
// never reads (e.g. GIR flags on an ordinary system) cannot cause spurious
// misses.  Entries are shared_ptr<const
// Plan>: a hit can be executed long after the entry was evicted.
//
// The key is a bare 64-bit hash, so every entry also stores its
// PlanKeyCheck (serialized byte length + an independent second hash); a
// lookup whose check disagrees with the stored one is a detected collision
// — counted (collisions(), plan_cache.collisions) and treated as a miss,
// never served.  An insert under a colliding key replaces the entry: the
// newest identity wins, both identities keep compiling.
//
// A capacity of 0 disables caching outright: find/peek always miss, insert
// is a no-op — the documented IR_PLAN_CACHE_CAP=0 semantics (solver.hpp).
//
// Thread safe (one mutex — compile is orders of magnitude more expensive
// than the lookup).  Hit/miss/eviction/collision counts are exposed both as
// instance accessors and as plan_cache.* metrics in the observability
// registry (docs/observability.md).
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <utility>

#include "core/plan.hpp"
#include "support/thread_annotations.hpp"

namespace ir::core {

class PlanCache {
 public:
  /// `capacity` = max cached plans; 0 disables caching entirely.
  explicit PlanCache(std::size_t capacity = 64) : capacity_(capacity) {}

  /// Look up a plan; bumps it to most-recently-used on a hit.  A present
  /// key whose stored check differs from `check` counts one collision and
  /// one miss and returns null.
  [[nodiscard]] std::shared_ptr<const Plan> find(std::uint64_t key,
                                                 const PlanKeyCheck& check)
      IR_EXCLUDES(mutex_);

  /// find() without counters or an LRU bump — the Solver's single-flight
  /// double-check uses this so one compile() call never records more than
  /// one hit or miss.  A check mismatch returns null without counting.
  [[nodiscard]] std::shared_ptr<const Plan> peek(std::uint64_t key,
                                                 const PlanKeyCheck& check) const
      IR_EXCLUDES(mutex_);

  /// Insert (or refresh) a plan, evicting the least-recently-used entry
  /// beyond capacity.  Inserting under a key held by a different identity
  /// counts a collision and replaces the entry.
  void insert(std::uint64_t key, const PlanKeyCheck& check,
              std::shared_ptr<const Plan> plan) IR_EXCLUDES(mutex_);

  void clear() IR_EXCLUDES(mutex_);

  [[nodiscard]] std::size_t size() const IR_EXCLUDES(mutex_);
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint64_t hits() const IR_EXCLUDES(mutex_);
  [[nodiscard]] std::uint64_t misses() const IR_EXCLUDES(mutex_);
  [[nodiscard]] std::uint64_t evictions() const IR_EXCLUDES(mutex_);
  [[nodiscard]] std::uint64_t collisions() const IR_EXCLUDES(mutex_);

 private:
  struct Entry {
    std::uint64_t key;
    PlanKeyCheck check;
    std::shared_ptr<const Plan> plan;
  };

  mutable support::Mutex mutex_;
  std::size_t capacity_;  ///< immutable after construction
  /// front = most recently used
  std::list<Entry> lru_ IR_GUARDED_BY(mutex_);
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_
      IR_GUARDED_BY(mutex_);
  std::uint64_t hits_ IR_GUARDED_BY(mutex_) = 0;
  std::uint64_t misses_ IR_GUARDED_BY(mutex_) = 0;
  std::uint64_t evictions_ IR_GUARDED_BY(mutex_) = 0;
  std::uint64_t collisions_ IR_GUARDED_BY(mutex_) = 0;
};

}  // namespace ir::core
