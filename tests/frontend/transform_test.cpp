#include "frontend/transform.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "algebra/monoids.hpp"
#include "core/classify.hpp"
#include "core/general_ir.hpp"
#include "frontend/parser.hpp"

namespace ir::frontend {
namespace {

constexpr const char* kFragmentJOuter = R"(
array X[103][7]
for j = 1 .. 6 {
  for k = 1 .. 100 {
    X[k][j] = X[k-1][j] . X[k][j]
  }
}
)";

/// Execute both lowered systems with an exact monoid and compare.
void expect_same_results(const LoweredProgram& a, const LoweredProgram& b) {
  algebra::ModMulMonoid op(1'000'000'007ull);
  ASSERT_EQ(a.system.cells, b.system.cells);
  std::vector<std::uint64_t> init(a.system.cells);
  for (std::size_t c = 0; c < init.size(); ++c) init[c] = 1 + c % 89;
  EXPECT_EQ(core::general_ir_sequential(op, a.system, init),
            core::general_ir_sequential(op, b.system, init));
}

TEST(InterchangeTest, SwapsLoopsAndRenamesVariables) {
  const auto program = parse_program(kFragmentJOuter);
  const auto swapped = interchange(program, 0, 1);
  EXPECT_EQ(swapped.loops[0].var, "k");
  EXPECT_EQ(swapped.loops[1].var, "j");
  // The subscript k-1 must still mean "k minus one" after renaming.
  const std::int64_t vars[] = {10, 2};  // k=10 (now var 0), j=2
  EXPECT_EQ(swapped.body[0].lhs.subscripts[0].evaluate(vars), 9);
  EXPECT_EQ(swapped.body[0].lhs.subscripts[1].evaluate(vars), 2);
}

TEST(InterchangeTest, IdentityAndRoundTrip) {
  const auto program = parse_program(kFragmentJOuter);
  EXPECT_EQ(interchange(program, 1, 1).to_string(), program.to_string());
  EXPECT_EQ(interchange(interchange(program, 0, 1), 0, 1).to_string(),
            program.to_string());
}

TEST(InterchangeTest, FragmentInterchangeIsLegalAndChangesClass) {
  // The paper connection: j-outer gives per-column consecutive chains
  // (linear); k-outer interleaves them (ordinary indexed).  Interchange is
  // legal — the column dependence never crosses columns.
  const auto j_outer = parse_program(kFragmentJOuter);
  const auto k_outer = interchange(j_outer, 0, 1);

  const auto a = lower(j_outer);
  const auto b = lower(k_outer);
  EXPECT_EQ(core::classify(a.system), core::LoopClass::kLinearRecurrence);
  EXPECT_EQ(core::classify(b.system), core::LoopClass::kOrdinaryIndexed);

  const auto check = check_dependence_preservation(a, b);
  EXPECT_TRUE(check.preserved) << check.violation;
  EXPECT_GT(check.pairs_checked, 0u);
  expect_same_results(a, b);
}

TEST(InterchangeTest, IllegalInterchangeIsDetected) {
  // X[k][j] reads X[k-1][j-1]: the diagonal dependence makes (j,k) -> (k,j)
  // interchange reverse it... actually the diagonal dependence (+1, +1)
  // survives interchange; use the (+1, -1) anti-diagonal, which reverses.
  const auto program = parse_program(R"(
array X[103][9]
for j = 1 .. 7 {
  for k = 1 .. 100 {
    X[k][j] = X[k-1][j+1] . X[k][j]
  }
}
)");
  const auto swapped = interchange(program, 0, 1);
  const auto a = lower(program);
  const auto b = lower(swapped);
  const auto check = check_dependence_preservation(a, b);
  EXPECT_FALSE(check.preserved);
  EXPECT_NE(check.violation.find("dependence reversed"), std::string::npos);
}

TEST(InterchangeTest, TriangularNestRejected) {
  const auto program = parse_program(R"(
array A[40]
for i = 0 .. 3 {
  for k = 0 .. i {
    A[10*i + k + 1] = A[10*i + k] . A[10*i + k + 1]
  }
}
)");
  EXPECT_THROW((void)interchange(program, 0, 1), support::ContractViolation);
}

TEST(InterchangeTest, OutOfRangeLevels) {
  const auto program = parse_program(kFragmentJOuter);
  EXPECT_THROW((void)interchange(program, 0, 2), support::ContractViolation);
}

TEST(ReverseTest, StreamingLoopReversalIsLegal) {
  const auto program = parse_program(R"(
array A[20]
array B[20]
for i = 2 .. 17 {
  A[i] = B[i-1] . B[i+2]
}
)");
  const auto reversed = reverse(program, 0);
  const auto check = check_dependence_preservation(lower(program), lower(reversed),
                                                   reverse_iteration_map(program, 0));
  EXPECT_TRUE(check.preserved) << check.violation;
  expect_same_results(lower(program), lower(reversed));
}

TEST(ReverseTest, ChainReversalIsIllegal) {
  const auto program = parse_program(R"(
array A[20]
for i = 1 .. 17 {
  A[i] = A[i-1] . A[i]
}
)");
  const auto reversed = reverse(program, 0);
  // The reversed program runs i = 17 first via the substitution, so A[i-1]
  // now reads a value that has not been produced yet.
  const auto check = check_dependence_preservation(lower(program), lower(reversed),
                                                   reverse_iteration_map(program, 0));
  EXPECT_FALSE(check.preserved);
  EXPECT_NE(check.violation.find("flow dependence reversed"), std::string::npos);
}

TEST(ReverseTest, SubstitutionCoversTriangularInnerBounds) {
  const auto program = parse_program(R"(
array A[40]
for i = 0 .. 3 {
  for k = i .. 3 {
    A[10*i + k + 1] = A[10*i + k] . A[10*i + k + 1]
  }
}
)");
  const auto reversed = reverse(program, 0);
  // Same multiset of executed iterations: lowering must produce the same
  // equation multiset (order differs).
  auto a = lower(program).system;
  auto b = lower(reversed).system;
  auto key = [](const core::GeneralIrSystem& sys, std::size_t e) {
    return std::tuple{sys.f[e], sys.g[e], sys.h[e]};
  };
  std::vector<std::tuple<std::size_t, std::size_t, std::size_t>> ka, kb;
  for (std::size_t e = 0; e < a.iterations(); ++e) ka.push_back(key(a, e));
  for (std::size_t e = 0; e < b.iterations(); ++e) kb.push_back(key(b, e));
  std::sort(ka.begin(), ka.end());
  std::sort(kb.begin(), kb.end());
  EXPECT_EQ(ka, kb);
}

TEST(StripMineTest, ExecutionOrderIsBitIdentical) {
  const auto program = parse_program(R"(
array A[101]
for i = 1 .. 100 {
  A[i] = A[i-1] . A[i]
}
)");
  const auto tiled = strip_mine(program, 0, 10);
  ASSERT_EQ(tiled.loops.size(), 2u);
  EXPECT_EQ(tiled.loops[0].var, "i__o");
  EXPECT_EQ(tiled.loops[1].var, "i__i");
  // Strip-mining never reorders: the lowered equation SEQUENCES are equal.
  const auto a = lower(program).system;
  const auto b = lower(tiled).system;
  EXPECT_EQ(a.f, b.f);
  EXPECT_EQ(a.g, b.g);
  EXPECT_EQ(a.h, b.h);
}

TEST(StripMineTest, ComposesWithInterchangeIntoBlockedSchedule) {
  // chain -> strip-mine -> (tile, intra) nest; interchanging the two tile
  // loops of a 2-D streaming loop builds the classic blocked schedule.
  const auto program = parse_program(R"(
array X[64][64]
array Y[64][64]
for r = 0 .. 63 {
  for c = 0 .. 63 {
    X[r][c] = Y[r][c] . Y[c][r]
  }
}
)");
  const auto tiled_r = strip_mine(program, 0, 16);
  const auto tiled_rc = strip_mine(tiled_r, 2, 16);
  ASSERT_EQ(tiled_rc.loops.size(), 4u);
  // (r__o, r__i, c__o, c__i) -> (r__o, c__o, r__i, c__i)
  const auto blocked = interchange(tiled_rc, 1, 2);
  EXPECT_EQ(blocked.loops[1].var, "c__o");
  const auto check = check_dependence_preservation(lower(program), lower(program));
  EXPECT_TRUE(check.preserved);
  // The blocked schedule must still compute the same values (streaming loop:
  // any order works; verified by execution).
  expect_same_results(lower(program), lower(blocked));
}

TEST(StripMineTest, RejectsRaggedTiles) {
  const auto program = parse_program(R"(
array A[101]
for i = 1 .. 100 {
  A[i] = A[i-1] . A[i]
}
)");
  EXPECT_THROW((void)strip_mine(program, 0, 7), support::ContractViolation);
  EXPECT_THROW((void)strip_mine(program, 0, 0), support::ContractViolation);
  EXPECT_THROW((void)strip_mine(program, 1, 10), support::ContractViolation);
}

TEST(DependenceCheckTest, DetectsMissingIterations) {
  const auto a = lower(parse_program(R"(
array A[10]
for i = 1 .. 5 { A[i] = A[i-1] . A[i] }
)"));
  const auto b = lower(parse_program(R"(
array A[10]
for i = 1 .. 4 { A[i] = A[i-1] . A[i] }
)"));
  const auto check = check_dependence_preservation(a, b);
  EXPECT_FALSE(check.preserved);
  EXPECT_NE(check.violation.find("iteration counts differ"), std::string::npos);
}

TEST(DependenceCheckTest, SelfCheckAlwaysPasses) {
  const auto lowered = lower(parse_program(kFragmentJOuter));
  const auto check = check_dependence_preservation(lowered, lowered);
  EXPECT_TRUE(check.preserved);
}

TEST(DependenceCheckTest, RequiresRecordedVars) {
  LowerOptions no_vars;
  no_vars.record_vars = false;
  const auto program = parse_program(kFragmentJOuter);
  const auto a = lower(program);
  const auto b = lower(program, no_vars);
  EXPECT_THROW((void)check_dependence_preservation(a, b), support::ContractViolation);
}

}  // namespace
}  // namespace ir::frontend
