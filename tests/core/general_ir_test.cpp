// Exercises the deprecated one-shot shims (core/compat.hpp) on purpose;
// the define keeps -Werror builds green without losing the diagnostic
// elsewhere.
#define IR_COMPAT_ALLOW_DEPRECATED
#include "core/compat.hpp"
#include "core/general_ir.hpp"

#include <gtest/gtest.h>

#include "algebra/monoids.hpp"
#include "testing/random_systems.hpp"

namespace ir::core {
namespace {

using algebra::ModAddMonoid;
using algebra::ModMulMonoid;
using support::BigUint;
using testing::random_general_system;

/// The paper's GIR motivator: A[i] := A[i-1] * A[i-2] for i = 2..n-1.
GeneralIrSystem fibonacci_system(std::size_t n) {
  GeneralIrSystem sys;
  sys.cells = n;
  for (std::size_t i = 2; i < n; ++i) {
    sys.f.push_back(i - 1);
    sys.g.push_back(i);
    sys.h.push_back(i - 2);
  }
  return sys;
}

TEST(DependenceGraphTest, PaperFigure6) {
  // A[i] = A[i-1]*A[i-2], i = 2..4: three iteration nodes, two leaves
  // (A0[0], A0[1]); each iteration points at its two operands.
  const auto sys = fibonacci_system(5);
  const auto graph = build_dependence_graph(sys);
  EXPECT_EQ(graph.iterations, 3u);
  ASSERT_EQ(graph.leaf_cell.size(), 2u);
  EXPECT_EQ(graph.leaf_cell[0], 1u);  // f(0) = cell 1 is read first
  EXPECT_EQ(graph.leaf_cell[1], 0u);
  EXPECT_EQ(graph.dag.node_count(), 5u);

  // Iteration 0 (writes A[2]): both operands are initial-value leaves.
  EXPECT_EQ(graph.dag.out_edges(0)[0].to, graph.leaf_of_cell(1));
  EXPECT_EQ(graph.dag.out_edges(0)[1].to, graph.leaf_of_cell(0));
  // Iteration 1 (writes A[3]): f = A[2] -> iteration 0, h = A[1] -> leaf.
  EXPECT_EQ(graph.dag.out_edges(1)[0].to, 0u);
  EXPECT_EQ(graph.dag.out_edges(1)[1].to, graph.leaf_of_cell(1));
  // Iteration 2 (writes A[4]): f -> iteration 1, h -> iteration 0.
  EXPECT_EQ(graph.dag.out_edges(2)[0].to, 1u);
  EXPECT_EQ(graph.dag.out_edges(2)[1].to, 0u);

  const auto names = graph.node_names(sys);
  EXPECT_EQ(names[0], "i0:A[2]");
  EXPECT_EQ(names[4], "A0[0]");
}

TEST(DependenceGraphTest, SharedLeafForRepeatedInitialReads) {
  // Two iterations read the same untouched cell: one shared leaf.
  GeneralIrSystem sys{4, {0, 0}, {1, 2}, {3, 3}};
  const auto graph = build_dependence_graph(sys);
  EXPECT_EQ(graph.leaf_cell.size(), 2u);  // cells 0 and 3 only
}

TEST(GeneralIrExponentsTest, FibonacciPowers) {
  // Paper Figure 5: the trace of X_i multiplies A[0]^fib(i-1) * A[1]^fib(i).
  const std::size_t n = 24;
  const auto exponents = general_ir_exponents(fibonacci_system(n));
  std::vector<BigUint> fib(n);
  fib[0] = 1;
  fib[1] = 1;
  for (std::size_t i = 2; i < n; ++i) fib[i] = fib[i - 1] + fib[i - 2];
  for (std::size_t t = 0; t < exponents.size(); ++t) {
    // iteration t writes cell t+2.
    ASSERT_EQ(exponents[t].size(), 2u);
    EXPECT_EQ(exponents[t][0].first, 0u);
    EXPECT_EQ(exponents[t][0].second, fib[t]);      // A[0]^fib(i-2)
    EXPECT_EQ(exponents[t][1].first, 1u);
    EXPECT_EQ(exponents[t][1].second, fib[t + 1]);  // A[1]^fib(i-1)
  }
}

TEST(GeneralIrTest, SequentialGroundTruth) {
  GeneralIrSystem sys{3, {0, 1}, {1, 2}, {1, 0}};
  // A[1] = A[0]+A[1] = 1+10 = 11; A[2] = A[1]+A[0] = 11+1 = 12.
  const auto out = general_ir_sequential(ModAddMonoid(1'000'000'007ull), sys, {1, 10, 100});
  EXPECT_EQ(out, (std::vector<std::uint64_t>{1, 11, 12}));
}

TEST(GeneralIrTest, FibonacciProductExactModP) {
  // A[0] = a, A[1] = b, A[i] = A[i-1]*A[i-2]: A[n-1] = a^fib * b^fib mod p.
  // Exercises BigUint exponents (fib(118) ~ 2·10^24 >> 2^64) end to end.
  const std::size_t n = 120;
  const auto sys = fibonacci_system(n);
  ModMulMonoid op(1'000'000'007ull);
  std::vector<std::uint64_t> init(n, 1);
  init[0] = 12345;
  init[1] = 67890;
  const auto expect = general_ir_sequential(op, sys, init);
  const auto actual = general_ir_parallel(op, sys, init);
  EXPECT_EQ(actual, expect);
}

TEST(GeneralIrTest, NonDistinctGHandled) {
  // Repeated writes to one cell — the "non-distinct g" extension.
  GeneralIrSystem sys{3, {0, 0, 0}, {1, 1, 1}, {1, 1, 1}};
  ModAddMonoid op(1'000'000'007ull);
  // A[1] = A[0]+A[1] three times: 5, 5+3=8... with A={3,2,...}:
  // A[1]: 2 -> 5 -> 8 -> 11.
  const auto expect = general_ir_sequential(op, sys, {3, 2, 0});
  EXPECT_EQ(expect[1], 11u);
  EXPECT_EQ(general_ir_parallel(op, sys, {3, 2, 0}), expect);
}

TEST(GeneralIrTest, OrdinarySystemsSolveViaGir) {
  support::SplitMix64 rng(51);
  const auto ord = testing::random_ordinary_system(100, 150, rng, 0.8);
  const auto sys = GeneralIrSystem::from_ordinary(ord);
  ModMulMonoid op(999999937ull);
  std::vector<std::uint64_t> init(150);
  for (auto& v : init) v = 1 + rng.below(999999936ull);
  EXPECT_EQ(general_ir_parallel(op, sys, init), general_ir_sequential(op, sys, init));
}

TEST(GeneralIrTest, MinMonoidIdempotent) {
  support::SplitMix64 rng(52);
  const auto sys = random_general_system(150, 100, rng, 0.8);
  algebra::MinMonoid<std::uint64_t> op;
  std::vector<std::uint64_t> init(100);
  for (auto& v : init) v = rng.below(100000);
  EXPECT_EQ(general_ir_parallel(op, sys, init), general_ir_sequential(op, sys, init));
}

TEST(GeneralIrTest, ReferenceCountsAblationMatches) {
  support::SplitMix64 rng(53);
  const auto sys = random_general_system(120, 80, rng, 0.7);
  ModAddMonoid op(1'000'000'007ull);
  std::vector<std::uint64_t> init(80);
  for (auto& v : init) v = rng.below(1000);
  GeneralIrOptions dp;
  dp.reference_counts = true;
  EXPECT_EQ(general_ir_parallel(op, sys, init, dp),
            general_ir_parallel(op, sys, init, {}));
}

TEST(GeneralIrTest, CapStatsExported) {
  const auto sys = fibonacci_system(64);
  graph::CapResult cap;
  GeneralIrOptions options;
  options.cap_out = &cap;
  ModMulMonoid op(97);
  std::vector<std::uint64_t> init(64, 2);
  general_ir_parallel(op, sys, init, options);
  EXPECT_GT(cap.rounds, 0u);
  EXPECT_LE(cap.rounds, 8u);  // log2(longest path ~62) + slack
  EXPECT_GT(cap.peak_edges, 0u);
}

TEST(GeneralIrTest, PoolMatchesSequentialExecution) {
  support::SplitMix64 rng(54);
  parallel::ThreadPool pool(4);
  const auto sys = random_general_system(400, 250, rng, 0.75);
  ModAddMonoid op(1'000'000'007ull);
  std::vector<std::uint64_t> init(250);
  for (auto& v : init) v = rng.below(1000000);
  GeneralIrOptions options;
  options.pool = &pool;
  EXPECT_EQ(general_ir_parallel(op, sys, init, options),
            general_ir_sequential(op, sys, init));
}

TEST(GeneralIrTest, ExactFibonacciViaBigUintAddition) {
  // op = BigUint addition: the GIR evaluation is EXACT unbounded arithmetic.
  // A[i] = A[i-1] + A[i-2], A[0] = A[1] = 1  =>  A[i] = fib(i+1).
  const std::size_t n = 200;
  const auto sys = fibonacci_system(n);
  std::vector<support::BigUint> init(n, support::BigUint{1});
  const auto parallel = general_ir_parallel(algebra::BigAddMonoid{}, sys, init);
  const auto sequential = general_ir_sequential(algebra::BigAddMonoid{}, sys, init);
  EXPECT_EQ(parallel, sequential);
  support::BigUint a{1}, b{1};
  for (std::size_t i = 2; i < n; ++i) {
    const support::BigUint next = a + b;
    a = b;
    b = next;
  }
  EXPECT_EQ(parallel[n - 1], b);
  EXPECT_GT(parallel[n - 1].bit_length(), 64u);
}

TEST(GeneralIrTest, DeadEquationPruning) {
  // 100 equations write cell 1, only the last is ever observable; the
  // pruned run must process just the live ancestors.
  GeneralIrSystem sys;
  sys.cells = 110;
  for (std::size_t i = 0; i < 100; ++i) {
    sys.f.push_back(100 + i % 10);
    sys.g.push_back(1);
    sys.h.push_back(100 + (i + 3) % 10);
  }
  ModAddMonoid op(1'000'000'007ull);
  std::vector<std::uint64_t> init(110);
  for (std::size_t c = 0; c < 110; ++c) init[c] = c + 1;

  const auto expect = general_ir_sequential(op, sys, init);

  std::size_t live = 0;
  GeneralIrOptions pruned;
  pruned.prune_dead = true;
  pruned.live_equations = &live;
  EXPECT_EQ(general_ir_parallel(op, sys, init, pruned), expect);
  EXPECT_EQ(live, 1u);  // only the final writer survives

  std::size_t all = 0;
  GeneralIrOptions unpruned;
  unpruned.live_equations = &all;
  EXPECT_EQ(general_ir_parallel(op, sys, init, unpruned), expect);
  EXPECT_EQ(all, 100u);
}

TEST(GeneralIrTest, PruningMatchesOnRandomSystems) {
  support::SplitMix64 rng(55);
  for (int trial = 0; trial < 6; ++trial) {
    const auto sys = random_general_system(250, 60, rng, 0.7);  // many overwrites
    ModMulMonoid op(1'000'000'007ull);
    std::vector<std::uint64_t> init(60);
    for (auto& v : init) v = 1 + rng.below(1'000'000'006ull);
    std::size_t live = 0;
    GeneralIrOptions pruned;
    pruned.prune_dead = true;
    pruned.live_equations = &live;
    EXPECT_EQ(general_ir_parallel(op, sys, init, pruned),
              general_ir_sequential(op, sys, init))
        << trial;
    EXPECT_LE(live, sys.iterations());
  }
}

TEST(GeneralIrTest, EmptyAndUntouched) {
  GeneralIrSystem sys{3, {}, {}, {}};
  ModAddMonoid op(97);
  EXPECT_EQ(general_ir_parallel(op, sys, {1, 2, 3}), (std::vector<std::uint64_t>{1, 2, 3}));
}

// Property sweep over sizes/aliasing/seeds with an exact monoid.
struct GirSweepParam {
  std::size_t iterations;
  std::size_t cells;
  double rewire;
  std::uint64_t seed;
};

class GeneralIrSweepTest : public ::testing::TestWithParam<GirSweepParam> {};

TEST_P(GeneralIrSweepTest, ParallelEqualsSequentialModMul) {
  const auto p = GetParam();
  support::SplitMix64 rng(p.seed);
  const auto sys = random_general_system(p.iterations, p.cells, rng, p.rewire);
  ModMulMonoid op(1'000'000'007ull);
  std::vector<std::uint64_t> init(p.cells);
  for (auto& v : init) v = 1 + rng.below(1'000'000'006ull);
  EXPECT_EQ(general_ir_parallel(op, sys, init), general_ir_sequential(op, sys, init));
}

TEST_P(GeneralIrSweepTest, ParallelEqualsSequentialModAdd) {
  const auto p = GetParam();
  support::SplitMix64 rng(p.seed ^ 0xbeef);
  const auto sys = random_general_system(p.iterations, p.cells, rng, p.rewire);
  ModAddMonoid op(999999937ull);
  std::vector<std::uint64_t> init(p.cells);
  for (auto& v : init) v = rng.below(999999937ull);
  EXPECT_EQ(general_ir_parallel(op, sys, init), general_ir_sequential(op, sys, init));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GeneralIrSweepTest,
    ::testing::Values(GirSweepParam{1, 2, 0.0, 1}, GirSweepParam{2, 2, 1.0, 2},
                      GirSweepParam{20, 10, 0.9, 3}, GirSweepParam{50, 8, 1.0, 4},
                      GirSweepParam{100, 100, 0.3, 5}, GirSweepParam{200, 50, 0.8, 6},
                      GirSweepParam{300, 300, 0.6, 7}, GirSweepParam{500, 40, 0.9, 8}));

}  // namespace
}  // namespace ir::core
