#include "frontend/parser.hpp"

#include <gtest/gtest.h>

namespace ir::frontend {
namespace {

constexpr const char* kLoop23 = R"(
# Livermore 23 fragment (paper Section 3)
array X[103][7]
array Y[103]
for j = 1 .. 6 {
  for k = 1 .. 100 {
    X[k][j] = X[k-1][j] . X[k][j]
  }
}
)";

TEST(ParserTest, ParsesLoop23Fragment) {
  const auto program = parse_program(kLoop23);
  ASSERT_EQ(program.arrays.size(), 2u);
  EXPECT_EQ(program.arrays[0].name, "X");
  EXPECT_EQ(program.arrays[0].extents, (std::vector<std::size_t>{103, 7}));
  ASSERT_EQ(program.loops.size(), 2u);
  EXPECT_EQ(program.loops[0].var, "j");
  EXPECT_EQ(program.loops[1].var, "k");
  ASSERT_EQ(program.body.size(), 1u);
  const auto& statement = program.body[0];
  EXPECT_EQ(statement.target.array, 0u);
  // lhs subscript 0 is k-1.
  const std::int64_t vars[] = {2, 10};  // j=2, k=10
  EXPECT_EQ(statement.lhs.subscripts[0].evaluate(vars), 9);
  EXPECT_EQ(statement.lhs.subscripts[1].evaluate(vars), 2);
}

TEST(ParserTest, RoundTripsThroughToString) {
  const auto program = parse_program(kLoop23);
  const auto again = parse_program(program.to_string());
  EXPECT_EQ(again.to_string(), program.to_string());
}

TEST(ParserTest, MultipleStatementsAndSemicolons) {
  const auto program = parse_program(R"(
array A[10]
array B[10]
for i = 1 .. 9 {
  A[i] = A[i-1] . A[i];
  B[i] = A[i] . B[i]
}
)");
  EXPECT_EQ(program.body.size(), 2u);
}

TEST(ParserTest, AffineSubscriptForms) {
  const auto program = parse_program(R"(
array A[100]
for i = 0 .. 9 {
  A[7*i + 3] = A[i*2] . A[-i + 50]
}
)");
  const std::int64_t vars[] = {4};
  EXPECT_EQ(program.body[0].target.subscripts[0].evaluate(vars), 31);
  EXPECT_EQ(program.body[0].lhs.subscripts[0].evaluate(vars), 8);
  EXPECT_EQ(program.body[0].rhs.subscripts[0].evaluate(vars), 46);
}

TEST(ParserTest, BoundsMayUseOuterVariables) {
  const auto program = parse_program(R"(
array A[64]
for i = 0 .. 7 {
  for k = i .. 2*i + 1 {
    A[k+8] = A[k] . A[k+8]
  }
}
)");
  EXPECT_EQ(program.loops[1].lower, AffineExpr::variable(0));
}

TEST(ParserTest, SyntaxErrorsCarryPositions) {
  try {
    (void)parse_program("array A[4]\nfor i = 0 .. 3 {\n  A[i] = A[i] @ A[i]\n}\n");
    FAIL() << "expected throw";
  } catch (const support::ContractViolation& error) {
    EXPECT_NE(std::string(error.what()).find("parse error at 3:"), std::string::npos);
  }
}

TEST(ParserTest, RejectsMalformedPrograms) {
  // Undeclared array.
  EXPECT_THROW((void)parse_program("for i = 0 .. 3 { A[i] = A[i] . A[i] }"),
               support::ContractViolation);
  // Unknown loop variable in a subscript.
  EXPECT_THROW(
      (void)parse_program("array A[4]\nfor i = 0 .. 3 { A[q] = A[i] . A[i] }"),
      support::ContractViolation);
  // Missing operator.
  EXPECT_THROW((void)parse_program("array A[4]\nfor i = 0 .. 3 { A[i] = A[i] }"),
               support::ContractViolation);
  // Statements mixed with a nested loop.
  EXPECT_THROW((void)parse_program(R"(
array A[9]
for i = 1 .. 2 {
  A[i] = A[i] . A[i]
  for k = 0 .. 1 { A[k] = A[k] . A[k] }
}
)"),
               support::ContractViolation);
  // Shadowed loop variable.
  EXPECT_THROW((void)parse_program(R"(
array A[9]
for i = 1 .. 2 {
  for i = 1 .. 2 { A[i] = A[i] . A[i] }
}
)"),
               support::ContractViolation);
  // Trailing garbage.
  EXPECT_THROW(
      (void)parse_program("array A[4]\nfor i = 0 .. 3 { A[i] = A[i] . A[i] } extra"),
      support::ContractViolation);
  // Scalar array reference (no subscript).
  EXPECT_THROW((void)parse_program("array A[4]\nfor i = 0 .. 3 { A = A . A }"),
               support::ContractViolation);
}

TEST(ParserTest, CommentsEverywhere) {
  const auto program = parse_program(R"(
# leading
array A[4]   # trailing
for i = 0 .. 3 {  # loop
  # inside
  A[i] = A[i] . A[i]  # statement
}
# after
)");
  EXPECT_EQ(program.body.size(), 1u);
}

}  // namespace
}  // namespace ir::frontend
