// The embeddable batch-solve server (docs/service.md).
//
//   ir::service::Server server(algebra::ModMulMonoid(p), config);
//   auto future = server.submit_async({sys, initial});
//   auto response = future.get();            // or server.submit(...) to block
//   if (response.ok()) use(response.values);
//   server.drain();                          // stop admitting, finish the rest
//
// Requests are keyed by plan_cache_key(system, options); queued requests
// sharing a key are coalesced into ONE compile (served by the server's
// content-addressed PlanCache) and ONE execute_many — the compile-once /
// replay-many economics of the plan API (docs/solver_api.md) turned into
// per-request throughput.  Admission control (hard capacity + watermark
// hysteresis), per-request deadlines, and cooperative cancellation live in
// the type-erased ServerCore; this template adds the operation: compiling
// through a Solver, batching the initial arrays, and fulfilling each
// request's promise.  Batching never reorders operands — each initial array
// replays the schedule independently inside execute_many, which the
// ConcatMonoid differential leg (src/testing/) pins.
#pragma once

#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "algebra/concepts.hpp"
#include "core/plan.hpp"
#include "core/plan_io.hpp"
#include "core/solver.hpp"
#include "obs/request_id.hpp"
#include "obs/telemetry.hpp"
#include "service/request.hpp"
#include "service/server_core.hpp"

namespace ir::service {

template <algebra::BinaryOperation Op>
class Server {
 public:
  using Value = typename Op::Value;
  using Response = BasicResponse<Value>;

  /// One solve request.  `deadline` is relative to submit time (zero = no
  /// deadline); `cancel` is an optional cooperative token — set it to true
  /// any time before dispatch and the request completes kCancelled without
  /// touching the operation.  `plan.pool` is ignored: execution placement
  /// belongs to the server (ServiceConfig::exec_threads).
  struct Request {
    core::GeneralIrSystem sys;
    std::vector<Value> initial;
    core::PlanOptions plan;
    Clock::duration deadline{0};
    std::shared_ptr<std::atomic<bool>> cancel;
  };

  explicit Server(Op op, const ServiceConfig& config = {})
      : op_(std::move(op)),
        config_(config),
        solver_(make_solver_config(config)),
        core_(config, [this](std::vector<std::shared_ptr<detail::PendingBase>> batch,
                             parallel::ThreadPool* pool) {
          execute_batch(std::move(batch), pool);
        }) {
    // Warm start before the dispatchers see any traffic: every store entry
    // enters the plan cache under its recorded identity, so a restarted
    // server replays its working set with plan_compiles() == 0.
    if (config_.plan_store != nullptr && config_.warm_start) {
      (void)config_.plan_store->preload(solver_.plan_cache());
    }
  }

  ~Server() { core_.shutdown(); }

  /// Submit without blocking.  The returned future always becomes ready:
  /// immediately (with a reject status) when admission refuses the request,
  /// otherwise when the request reaches a terminal state.  Never throws on
  /// overload — admission outcomes are data, not exceptions.
  [[nodiscard]] std::future<Response> submit_async(Request request) {
    auto promise = std::make_shared<std::promise<Response>>();
    std::future<Response> future = promise->get_future();
    submit_callback(std::move(request), [promise](Response&& response) {
      promise->set_value(std::move(response));
    });
    return future;
  }

  /// Submit with a completion callback instead of a future — the shape the
  /// HTTP tier and QoS scheduler need, where the completing thread (a
  /// dispatcher, or the submitting thread itself for admission rejects)
  /// hands the response onward instead of anyone blocking on a get().  The
  /// callback runs exactly once; it must not block for long (it runs on a
  /// dispatcher thread for executed requests).
  void submit_callback(Request request, std::function<void(Response&&)> done) {
    auto pending = std::make_shared<Pending>();
    pending->trace.request_id = obs::next_request_id();
    pending->deliver = std::move(done);

    if (request.initial.size() != request.sys.cells) {
      core_.note_rejected_invalid();
      finish_now(*pending, Status::kRejectedInvalid,
                 "initial array has " + std::to_string(request.initial.size()) +
                     " entries, system has " + std::to_string(request.sys.cells) +
                     " cells");
      return;
    }
    request.plan.pool = nullptr;  // placement is the server's, not the caller's
    pending->coalesce_key = core::plan_cache_key(request.sys, request.plan);
    if (request.deadline.count() > 0) {
      pending->deadline = Clock::now() + request.deadline;
    }
    pending->cancel = std::move(request.cancel);
    pending->sys = std::move(request.sys);
    pending->options = request.plan;
    pending->initial = std::move(request.initial);

    switch (core_.try_submit(pending)) {
      case detail::Admission::kAccepted:
        break;
      case detail::Admission::kQueueFull:
        finish_now(*pending, Status::kRejectedQueueFull, "queue at capacity");
        break;
      case detail::Admission::kBackpressure:
        finish_now(*pending, Status::kRejectedBackpressure,
                   "queue above the high watermark");
        break;
      case detail::Admission::kShuttingDown:
        finish_now(*pending, Status::kRejectedShutdown, "server is draining");
        break;
    }
  }

  /// Blocking submit: submit_async + get.
  [[nodiscard]] Response submit(Request request) {
    return submit_async(std::move(request)).get();
  }

  /// Stop admitting and wait for every accepted request to complete.
  void drain() { core_.drain(); }

  /// drain() + join the dispatchers.  The destructor calls this too.
  void shutdown() { core_.shutdown(); }

  [[nodiscard]] ServiceStats stats() const {
    ServiceStats out = core_.stats();
    out.plan_cache_hits = solver_.plan_cache().hits();
    out.plan_cache_misses = solver_.plan_cache().misses();
    out.plan_cache_collisions = solver_.plan_cache().collisions();
    out.plan_compiles = solver_.plan_compiles();
    if (config_.plan_store != nullptr) {
      out.plan_store_hits = config_.plan_store->hits();
      out.plan_store_misses = config_.plan_store->misses();
      out.plan_store_rejects = config_.plan_store->rejects();
      out.plan_store_puts = config_.plan_store->puts();
      out.plan_store_preloaded = config_.plan_store->preloaded();
    }
    return out;
  }

  [[nodiscard]] const ServiceConfig& config() const noexcept { return config_; }

 private:
  static core::SolverConfig make_solver_config(const ServiceConfig& config) {
    core::SolverConfig solver;
    solver.plan_cache_capacity = config.plan_cache_capacity != 0
                                     ? config.plan_cache_capacity
                                     : core::plan_cache_capacity_from_env();
    solver.plan_store = config.plan_store;
    solver.store_writes = config.store_writes;
    return solver;
  }

  struct Pending : detail::PendingBase {
    core::GeneralIrSystem sys;
    core::PlanOptions options;
    std::vector<Value> initial;
    std::vector<Value> values;  ///< solved array, set by execute_batch for kOk
    std::function<void(Response&&)> deliver;

    void fulfill(Status status, const std::string& error,
                 const ResponseInfo& info) override {
      Response response;
      response.status = status;
      response.error = error;
      response.info = info;
      response.values = std::move(values);
      deliver(std::move(response));
    }
  };

  static void finish_now(Pending& pending, Status status, const std::string& error) {
    pending.finish(status, error, ResponseInfo{});
  }

  /// The BatchFn: one compile (plan-cache served), one execute_many, one
  /// promise fulfillment per request.  Never throws — a compile/execute
  /// escape fails the whole batch request-by-request instead.
  void execute_batch(std::vector<std::shared_ptr<detail::PendingBase>> batch,
                     parallel::ThreadPool* pool) {
    const Clock::time_point dispatched = Clock::now();
    auto fail_all = [&](const std::string& error) {
      for (auto& base : batch) {
        auto& pending = static_cast<Pending&>(*base);
        ResponseInfo info;
        info.wait = dispatched - pending.enqueued_at;
        pending.finish(Status::kFailed, error, info);
      }
    };

    std::shared_ptr<const core::Plan> plan;
    try {
      // All batch members share a coalesce key, and the key is a pure
      // function of (content fingerprint, options), so the first member's
      // system stands in for the whole group.
      auto& first = static_cast<Pending&>(*batch.front());
      plan = solver_.compile(first.sys, first.options);
    } catch (const std::exception& e) {
      fail_all(std::string("compile failed: ") + e.what());
      return;
    } catch (...) {
      fail_all("compile failed: unknown exception");
      return;
    }

    std::vector<std::vector<Value>> initials;
    initials.reserve(batch.size());
    for (auto& base : batch) {
      initials.push_back(std::move(static_cast<Pending&>(*base).initial));
    }

    // Coalesced batches ride the wide SoA executor when enabled — one
    // transpose, all lanes in lockstep; singletons keep the scalar path,
    // where the transpose would be pure overhead.
    const bool wide = config_.wide_batches && batch.size() > 1;
    IR_COUNTER_ADD(wide ? "service.wide_batches" : "service.scalar_batches", 1);

    std::vector<std::vector<Value>> outputs;
    try {
      core::ExecOptions exec;
      exec.pool = pool;
      exec.workers = config_.spmd_workers;
      exec.variant = wide ? core::ExecVariant::kWide : core::ExecVariant::kScalar;
      outputs = core::execute_many(*plan, op_, std::move(initials), exec);
    } catch (const std::exception& e) {
      fail_all(std::string("execute failed: ") + e.what());
      return;
    } catch (...) {
      fail_all("execute failed: unknown exception");
      return;
    }

    const Clock::duration execute_time = Clock::now() - dispatched;
    for (std::size_t k = 0; k < batch.size(); ++k) {
      auto& pending = static_cast<Pending&>(*batch[k]);
      ResponseInfo info;
      info.batch_size = batch.size();
      info.coalesced = batch.size() > 1;
      info.plan_fingerprint = plan->fingerprint;
      info.engine = core::to_string(plan->engine);
      info.variant = wide ? "wide" : "scalar";
      info.wait = dispatched - pending.enqueued_at;
      info.execute = execute_time;
      pending.values = std::move(outputs[k]);
      pending.finish(Status::kOk, "", info);
    }
  }

  Op op_;
  ServiceConfig config_;
  core::Solver solver_;
  detail::ServerCore core_;
};

}  // namespace ir::service
