// General indexed recurrences (paper Section 4) on the paper's own
// motivating loop  A[i] := A[i-1] * A[i-2]:
//   * the trace is a binary tree (Figure 4) with exponential size (Figure 5),
//   * the dependence graph (Definition 2 / Figure 6),
//   * CAP counts the paths — the exponents are Fibonacci numbers,
//   * powers-as-atomic evaluation solves the loop in O(log n) style rounds.
//
//   $ ./fibonacci_power
#include <cstdio>

#include "algebra/monoids.hpp"
#include "core/general_ir.hpp"
#include "core/solver.hpp"
#include "core/trace.hpp"
#include "graph/dot.hpp"

int main() {
  using namespace ir;

  auto fibonacci_system = [](std::size_t n) {
    core::GeneralIrSystem sys;
    sys.cells = n;
    for (std::size_t i = 2; i < n; ++i) {
      sys.f.push_back(i - 1);
      sys.g.push_back(i);
      sys.h.push_back(i - 2);
    }
    return sys;
  };

  // Small instance: show the tree trace and the dependence graph.
  const auto small = fibonacci_system(6);
  std::printf("loop: for i = 2..5:  A[i] := A[i-1] * A[i-2]\n\n");

  const auto tree = core::general_trace_tree(small, small.iterations() - 1);
  std::printf("trace tree of A[5] (paper Figure 5):\n  %s\n\n", tree.render().c_str());

  const auto graph = core::build_dependence_graph(small);
  std::printf("dependence graph (paper Figure 6, consumer -> producer):\n%s\n",
              graph.dag.to_string(graph.node_names(small)).c_str());

  // Graphviz exports of Figures 6 and 9 (pipe into `dot -Tsvg`).
  const auto names = graph.node_names(small);
  std::printf("DOT of the dependence graph:\n%s\n",
              graph::to_dot(graph.dag, names).c_str());
  const auto closure = graph::cap_closure(graph.dag);
  std::printf("DOT of CAP(G) — the closed graph of Figure 9:\n%s\n",
              graph::to_dot(closure, graph.dag.node_count(), names).c_str());

  // CAP exponents: Fibonacci numbers.
  const auto exponents = core::general_ir_exponents(small);
  std::printf("CAP path counts = trace exponents:\n");
  for (std::size_t t = 0; t < exponents.size(); ++t) {
    std::printf("  A'[%zu] =", t + 2);
    for (const auto& [cell, count] : exponents[t]) {
      std::printf(" A0[%zu]^%s", cell, count.to_string().c_str());
    }
    std::printf("\n");
  }

  // Large instance: exponents overflow 64 bits long before n = 120, yet the
  // mod-p evaluation stays exact and matches direct sequential execution.
  const std::size_t n = 120;
  const auto big = fibonacci_system(n);
  const auto big_exponents = core::general_ir_exponents(big);
  std::printf("\nn = %zu: exponent of A0[1] in A'[%zu] = fib(%zu) =\n  %s\n", n, n - 1,
              n - 1, big_exponents.back().back().second.to_string().c_str());

  algebra::ModMulMonoid op(1'000'000'007ull);
  std::vector<std::uint64_t> init(n, 1);
  init[0] = 12345;
  init[1] = 67890;
  core::Solver solver;
  const auto plan = solver.compile(big);
  const auto parallel = solver.execute(*plan, op, init);
  const auto sequential = core::general_ir_sequential(op, big, init);
  std::printf("\nA'[%zu] mod p: parallel = %llu, sequential = %llu  (%s)\n", n - 1,
              static_cast<unsigned long long>(parallel[n - 1]),
              static_cast<unsigned long long>(sequential[n - 1]),
              parallel == sequential ? "match" : "MISMATCH");
  return parallel == sequential ? 0 : 1;
}
