// Scoped spans with nesting and per-thread buffers.
//
// A span is a named [start, end) interval on one thread.  IR_SPAN("round")
// (see obs/telemetry.hpp) opens one for the enclosing scope; spans nest, and
// the recorded depth lets exporters rebuild the stack.  Collection is opt-in:
// until Tracer::set_enabled(true) every span is a single relaxed atomic load
// and nothing is recorded, so leaving instrumentation compiled in costs
// nothing measurable on production paths.
//
// Each thread owns a ThreadTrack (buffer + stable track id + display name).
// Completed spans are appended under a per-track mutex — uncontended in
// steady state, but it lets drain() safely collect from live worker threads.
// Tracks whose thread exited are retired into the Tracer so a ThreadPool can
// be destroyed before the trace is exported without losing its workers'
// spans.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/clock.hpp"
#include "support/thread_annotations.hpp"

namespace ir::obs {

/// One completed span.  `name` must point at storage that outlives the
/// Tracer (string literals — which is what the IR_SPAN macro passes).
struct SpanEvent {
  const char* name;
  std::uint64_t start_ns;
  std::uint64_t end_ns;
  std::uint32_t depth;  ///< nesting depth at open time (0 = top level)
};

/// A thread's collected spans, as handed to the exporters.
struct TrackDump {
  std::uint64_t tid = 0;
  std::string name;
  std::vector<SpanEvent> events;
};

namespace detail {

struct ThreadTrack {
  support::Mutex mutex;  ///< guards `events` and `name` against drain()
  /// Assigned once in Tracer::attach under the *Tracer's* mutex and read
  /// there only — a cross-object guard IR_GUARDED_BY cannot name.
  std::uint64_t tid = 0;
  std::string name IR_GUARDED_BY(mutex);
  std::uint32_t depth = 0;  ///< owner-thread-only; not read by drain()
  std::vector<SpanEvent> events IR_GUARDED_BY(mutex);

  ThreadTrack();
  ~ThreadTrack();
};

ThreadTrack& local_track();

}  // namespace detail

/// Process-wide span collector.  Access through tracer(); leaked singleton
/// for the same teardown-ordering reason as the metrics registry.
class Tracer {
 public:
  /// Turn collection on/off.  Spans opened while disabled are never
  /// recorded, even if collection is enabled before they close.
  void set_enabled(bool on) noexcept;

  /// Hot-path check used by ScopedSpan.
  [[nodiscard]] static bool enabled() noexcept;

  /// Set the calling thread's track name (shown as the Chrome-trace track
  /// title).  Unnamed tracks render as "thread-<tid>".
  void set_thread_name(std::string name);

  /// Move all collected spans out (live tracks are emptied in place,
  /// retired tracks are consumed).  Tracks with no events are dropped.
  /// Ordering within a track is completion order; exporters sort by start.
  std::vector<TrackDump> drain();

  /// Discard everything collected so far.
  void clear();

 private:
  friend struct detail::ThreadTrack;

  void attach(detail::ThreadTrack* track) IR_EXCLUDES(mutex_);
  void detach(detail::ThreadTrack* track) IR_EXCLUDES(mutex_);

  support::Mutex mutex_;
  std::vector<detail::ThreadTrack*> live_ IR_GUARDED_BY(mutex_);
  std::vector<TrackDump> retired_ IR_GUARDED_BY(mutex_);
  std::uint64_t next_tid_ IR_GUARDED_BY(mutex_) = 1;
};

/// The process-wide tracer instance.
Tracer& tracer();

/// Name the calling thread's track (convenience wrapper).
void set_thread_name(const std::string& name);

/// RAII span.  Construct with a string LITERAL (the pointer is kept).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) noexcept {
    if (!Tracer::enabled()) return;
    name_ = name;
    start_ = now_ns();
    ++detail::local_track().depth;
  }

  ~ScopedSpan() {
    if (name_ == nullptr) return;
    auto& track = detail::local_track();
    const std::uint32_t depth = --track.depth;
    const std::uint64_t end = now_ns();
    support::LockGuard lock(track.mutex);
    track.events.push_back(SpanEvent{name_, start_, end, depth});
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_ = nullptr;
  std::uint64_t start_ = 0;
};

}  // namespace ir::obs
