#include "parallel/spmd.hpp"

#include "support/thread_annotations.hpp"

namespace ir::parallel {

void run_spmd(std::size_t workers, const std::function<void(SpmdContext&)>& body) {
  IR_REQUIRE(workers >= 1, "SPMD region needs at least one worker");
  if (workers == 1) {
    std::barrier<> barrier(1);
    SpmdContext ctx(0, 1, &barrier);
    body(ctx);
    return;
  }

  std::barrier<> barrier(static_cast<std::ptrdiff_t>(workers));
  // Locals: GUARDED_BY cannot name a stack capability, but the annotated
  // Mutex/LockGuard pair still checks acquire/release pairing statically.
  support::Mutex error_mutex;
  std::exception_ptr first_error;

  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      SpmdContext ctx(w, workers, &barrier);
      try {
        body(ctx);
      } catch (...) {
        support::LockGuard lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      // Leave the barrier so workers with differing barrier counts (an
      // exception path) cannot deadlock the rest.
      barrier.arrive_and_drop();
    });
  }
  for (auto& thread : threads) thread.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace ir::parallel
