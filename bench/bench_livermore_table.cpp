// TAB-LIV — the paper's Section-1 Livermore Loops analysis as a table:
// per-kernel recurrence class, derivation mode, and whether this library
// ships an IR-parallel version; then the headline histogram.
//
// The surviving paper text lost digits in its loop lists, so the reproduced
// claim is the distribution (see DESIGN.md): indexed recurrences strictly
// outnumber classic linear ones, and only a minority of kernels is
// recurrence-free.
#include <cmath>
#include <cstdio>

#include "livermore/info.hpp"
#include "livermore/kernels.hpp"
#include "support/table.hpp"

int main() {
  using namespace ir;

  const auto ws = livermore::Workspace::standard(1997);
  const auto table = livermore::classification_table(ws);

  support::TextTable out;
  out.set_header({"#", "kernel", "class", "derivation", "IR-parallel"});
  for (const auto& info : table) {
    out.add_row({std::to_string(info.id), info.name, core::to_string(info.cls),
                 info.mechanized ? "mechanized" : "hand",
                 info.parallelized ? "yes" : (info.in_ir_frame ? "-" : "out-of-frame")});
  }
  std::printf("TAB-LIV: classification of the 24 Livermore kernels\n\n%s\n",
              out.render().c_str());

  const auto histogram = livermore::class_histogram(table);
  support::TextTable totals;
  totals.set_header({"class", "kernels"});
  totals.add_row({"no recurrence", std::to_string(histogram[0])});
  totals.add_row({"linear recurrence", std::to_string(histogram[1])});
  totals.add_row({"ordinary indexed", std::to_string(histogram[2])});
  totals.add_row({"general indexed", std::to_string(histogram[3])});
  std::printf("%s\n", totals.render().c_str());

  const bool headline = histogram[2] + histogram[3] > histogram[1];
  std::printf("paper headline (indexed > linear): %s\n", headline ? "HOLDS" : "FAILS");

  // Also verify every kernel still runs and produces a finite checksum so
  // the table is tied to living code, not stale annotations.
  int ran = 0;
  for (int id = 1; id <= livermore::kKernelCount; ++id) {
    auto scratch = livermore::Workspace::standard(7);
    const double checksum = livermore::run_kernel(id, scratch);
    if (std::isfinite(checksum)) ++ran;
  }
  std::printf("kernels executed with finite checksums: %d/24\n", ran);
  return headline && ran == 24 ? 0 : 1;
}
