// Flat JSON metrics exporter: document shape, escaping, extra fields.
#include "obs/metrics_export.hpp"

#include <gtest/gtest.h>

namespace {

using namespace ir;

TEST(MetricsExport, JsonEscape) {
  EXPECT_EQ(obs::json_escape("plain"), "plain");
  EXPECT_EQ(obs::json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(obs::json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(obs::json_quote("x"), "\"x\"");
}

TEST(MetricsExport, DocumentShape) {
  obs::MetricsSnapshot snap;
  snap.counters["alpha.count"] = 7;
  snap.gauges["alpha.peak"] = 99;
  obs::MetricsSnapshot::Histogram histogram;
  histogram.buckets[0] = 2;
  histogram.buckets[3] = 5;
  snap.histograms["alpha.widths"] = histogram;

  const std::string json = obs::metrics_json(
      snap, {{"route", obs::json_quote("jumping")}, {"n", "1024"}});

  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"alpha.count\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"alpha.peak\": 99"), std::string::npos);
  EXPECT_NE(json.find("\"count\": 7, \"buckets\": [2, 0, 0, 5"), std::string::npos);
  EXPECT_NE(json.find("\"route\": \"jumping\""), std::string::npos);
  EXPECT_NE(json.find("\"n\": 1024"), std::string::npos);
}

TEST(MetricsExport, EmptySnapshotIsStillAnObject) {
  const std::string json = obs::metrics_json(obs::MetricsSnapshot{});
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"extra\""), std::string::npos);
}

}  // namespace
