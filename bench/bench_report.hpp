// BENCH_*.json emitter — the schema-versioned benchmark telemetry every bench
// binary writes behind --report=FILE (docs/benchmarking.md).
//
// One report = one bench run on one machine:
//
//   {
//     "schema": "ir-bench-report", "version": 1,
//     "bench": "plan_reuse",
//     "machine": {"hardware_concurrency": 8, "compiler": "...",
//                 "pointer_bits": 64},
//     "config": {"n": 50000, "k": 16, ...},
//     "variants": [
//       {"name": "jumping/warm", "unit": "ns", "samples": 16,
//        "per_op": 81234.5, "p50": 80211.0, "p90": ..., "p99": ...,
//        "p999": ..., "min": ..., "max": ...},
//       ...
//     ]
//   }
//
// Variants carry raw per-operation samples ("ns" wall-clock, or
// "instructions" for the PRAM cost-model benches); percentiles are exact
// (sorted samples, nearest-rank with interpolation), not histogram
// estimates — a bench owns its samples, unlike a live server.
// tools/check_bench_json.py validates the schema; tools/bench_compare.py
// diffs per_op against the committed baseline in bench/baseline/.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics_export.hpp"

namespace ir::bench {

inline constexpr int kBenchReportVersion = 1;

class BenchReport {
 public:
  explicit BenchReport(std::string bench_name) : bench_(std::move(bench_name)) {}

  void set_config(const std::string& key, const std::string& value) {
    config_.emplace_back(key, obs::json_quote(value));
  }
  void set_config(const std::string& key, std::uint64_t value) {
    config_.emplace_back(key, std::to_string(value));
  }

  /// Add one measured variant from raw per-op samples.  `unit` is what one
  /// sample measures: "ns" (wall-clock per operation) or "instructions"
  /// (PRAM cost-model time).  Empty sample sets are rejected — a bench that
  /// measured nothing has no business in the report.
  void add_variant(const std::string& name, std::vector<double> samples,
                   const std::string& unit = "ns") {
    if (samples.empty()) {
      throw std::invalid_argument("bench variant '" + name + "' has no samples");
    }
    std::sort(samples.begin(), samples.end());
    Variant v;
    v.name = name;
    v.unit = unit;
    v.count = samples.size();
    double sum = 0.0;
    for (const double s : samples) sum += s;
    v.per_op = sum / static_cast<double>(samples.size());
    v.p50 = percentile(samples, 0.50);
    v.p90 = percentile(samples, 0.90);
    v.p99 = percentile(samples, 0.99);
    v.p999 = percentile(samples, 0.999);
    v.min = samples.front();
    v.max = samples.back();
    variants_.push_back(std::move(v));
  }

  [[nodiscard]] std::string json() const {
    std::string out = "{\n";
    out += "  \"schema\": \"ir-bench-report\",\n";
    out += "  \"version\": " + std::to_string(kBenchReportVersion) + ",\n";
    out += "  \"bench\": " + obs::json_quote(bench_) + ",\n";
    out += "  \"machine\": {\n";
    out += "    \"hardware_concurrency\": " +
           std::to_string(std::thread::hardware_concurrency()) + ",\n";
    out += "    \"compiler\": " + obs::json_quote(compiler()) + ",\n";
    out += "    \"pointer_bits\": " + std::to_string(sizeof(void*) * 8) + "\n";
    out += "  },\n";
    out += "  \"config\": {";
    for (std::size_t i = 0; i < config_.size(); ++i) {
      out += (i == 0 ? "\n" : ",\n");
      out += "    " + obs::json_quote(config_[i].first) + ": " + config_[i].second;
    }
    out += config_.empty() ? "},\n" : "\n  },\n";
    out += "  \"variants\": [";
    for (std::size_t i = 0; i < variants_.size(); ++i) {
      const Variant& v = variants_[i];
      out += (i == 0 ? "\n" : ",\n");
      out += "    {\"name\": " + obs::json_quote(v.name) +
             ", \"unit\": " + obs::json_quote(v.unit) +
             ", \"samples\": " + std::to_string(v.count) +
             ", \"per_op\": " + number(v.per_op) + ", \"p50\": " + number(v.p50) +
             ", \"p90\": " + number(v.p90) + ", \"p99\": " + number(v.p99) +
             ", \"p999\": " + number(v.p999) + ", \"min\": " + number(v.min) +
             ", \"max\": " + number(v.max) + "}";
    }
    out += variants_.empty() ? "]\n" : "\n  ]\n";
    out += "}\n";
    return out;
  }

  /// Write the report; throws on I/O failure so benches fail loudly in CI.
  void write(const std::string& path) const {
    std::ofstream out(path);
    if (!out.good()) {
      throw std::runtime_error("cannot open bench report file '" + path + "'");
    }
    out << json();
    out.flush();
    if (!out.good()) {
      throw std::runtime_error("failed writing bench report file '" + path + "'");
    }
  }

 private:
  struct Variant {
    std::string name;
    std::string unit;
    std::size_t count = 0;
    double per_op = 0.0, p50 = 0.0, p90 = 0.0, p99 = 0.0, p999 = 0.0, min = 0.0,
           max = 0.0;
  };

  /// Exact percentile of sorted samples: linear interpolation between the
  /// two nearest ranks (the numpy default).
  static double percentile(const std::vector<double>& sorted, double q) {
    const double rank = q * static_cast<double>(sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
  }

  /// JSON-safe number: finite doubles only (NaN/Inf are not JSON).
  static std::string number(double v) {
    if (!std::isfinite(v)) return "0";
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.6g", v);
    return buffer;
  }

  static std::string compiler() {
#if defined(__VERSION__)
    return __VERSION__;
#else
    return "unknown";
#endif
  }

  std::string bench_;
  std::vector<std::pair<std::string, std::string>> config_;
  std::vector<Variant> variants_;
};

}  // namespace ir::bench
