#include "frontend/lower.hpp"

namespace ir::frontend {

namespace {

/// Evaluate a reference's subscripts and map to a flat cell, with a
/// diagnostic naming the iteration on failure.
std::size_t resolve_ref(const LoopProgram& program, const std::vector<std::size_t>& base,
                        const ArrayRef& ref, std::span<const std::int64_t> vars) {
  const ArrayDecl& array = program.arrays[ref.array];
  std::size_t flat = 0;
  for (std::size_t d = 0; d < ref.subscripts.size(); ++d) {
    const std::int64_t index = ref.subscripts[d].evaluate(vars);
    if (index < 0 || static_cast<std::size_t>(index) >= array.extents[d]) {
      std::string where;
      for (std::size_t v = 0; v < program.loops.size(); ++v) {
        if (!where.empty()) where += ", ";
        where += program.loops[v].var + "=" + std::to_string(vars[v]);
      }
      throw support::ContractViolation(
          "subscript " + std::to_string(index) + " out of range [0, " +
          std::to_string(array.extents[d]) + ") in dimension " + std::to_string(d) +
          " of '" + array.name + "' at " + where);
    }
    flat = flat * array.extents[d] + static_cast<std::size_t>(index);
  }
  return base[ref.array] + flat;
}

}  // namespace

std::size_t LoweredProgram::flat_cell(const LoopProgram& program, std::size_t array,
                                      std::span<const std::int64_t> indices) const {
  IR_REQUIRE(array < program.arrays.size(), "array id out of range");
  const ArrayDecl& decl = program.arrays[array];
  IR_REQUIRE(indices.size() == decl.extents.size(), "rank mismatch");
  std::size_t flat = 0;
  for (std::size_t d = 0; d < indices.size(); ++d) {
    IR_REQUIRE(indices[d] >= 0 &&
                   static_cast<std::size_t>(indices[d]) < decl.extents[d],
               "index out of range");
    flat = flat * decl.extents[d] + static_cast<std::size_t>(indices[d]);
  }
  return array_base[array] + flat;
}

LoweredProgram lower(const LoopProgram& program, const LowerOptions& options) {
  program.validate();

  LoweredProgram out;
  out.array_base.reserve(program.arrays.size());
  std::size_t cells = 0;
  for (const auto& array : program.arrays) {
    out.array_base.push_back(cells);
    cells += array.cell_count();
  }
  out.system.cells = cells;
  out.vars_per_equation = options.record_vars ? program.loops.size() : 0;
  for (const auto& loop : program.loops) out.var_names.push_back(loop.var);

  std::vector<std::int64_t> vars(program.loops.size(), 0);

  // Recursive nest walk; depth = which loop is being enumerated.
  auto walk = [&](auto&& self, std::size_t depth) -> void {
    if (depth == program.loops.size()) {
      for (std::size_t s = 0; s < program.body.size(); ++s) {
        const Statement& statement = program.body[s];
        IR_REQUIRE(out.system.g.size() < options.max_equations,
                   "lowering exceeds max_equations (" +
                       std::to_string(options.max_equations) + ")");
        out.system.f.push_back(resolve_ref(program, out.array_base, statement.lhs, vars));
        out.system.h.push_back(resolve_ref(program, out.array_base, statement.rhs, vars));
        out.system.g.push_back(
            resolve_ref(program, out.array_base, statement.target, vars));
        out.equation_statement.push_back(s);
        if (options.record_vars) {
          out.equation_vars.insert(out.equation_vars.end(), vars.begin(), vars.end());
        }
      }
      return;
    }
    const std::int64_t lower_bound = program.loops[depth].lower.evaluate(vars);
    const std::int64_t upper_bound = program.loops[depth].upper.evaluate(vars);
    for (std::int64_t v = lower_bound; v <= upper_bound; ++v) {
      vars[depth] = v;
      self(self, depth + 1);
    }
    vars[depth] = 0;
  };
  walk(walk, 0);

  out.system.validate();
  return out;
}

}  // namespace ir::frontend
