#include "livermore/parallel.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "livermore/kernels.hpp"

namespace ir::livermore {
namespace {

void expect_near(const std::vector<double>& a, const std::vector<double>& b,
                 std::size_t count, double tol) {
  ASSERT_GE(a.size(), count);
  ASSERT_GE(b.size(), count);
  for (std::size_t i = 0; i < count; ++i) {
    EXPECT_NEAR(a[i], b[i], tol * (1.0 + std::fabs(b[i]))) << "index " << i;
  }
}

TEST(LivermoreParallelTest, Kernel3ReductionMatches) {
  auto seq = Workspace::standard(100);
  auto par = Workspace::standard(100);
  const double expect = kernel03_inner_product(seq);
  const double actual = kernel03_parallel(par);
  EXPECT_NEAR(actual, expect, 1e-9 * (1.0 + std::fabs(expect)));
}

TEST(LivermoreParallelTest, Kernel5TridiagonalMatches) {
  auto seq = Workspace::standard(101);
  auto par = Workspace::standard(101);
  kernel05_tridiagonal(seq);
  kernel05_parallel(par);
  expect_near(par.x, seq.x, seq.loop_n, 1e-9);
}

TEST(LivermoreParallelTest, Kernel11FirstSumMatches) {
  auto seq = Workspace::standard(102);
  auto par = Workspace::standard(102);
  auto scn = Workspace::standard(102);
  kernel11_first_sum(seq);
  kernel11_parallel(par);
  kernel11_scan(scn);
  expect_near(par.x, seq.x, seq.loop_n, 1e-9);
  expect_near(scn.x, seq.x, seq.loop_n, 1e-9);
}

TEST(LivermoreParallelTest, Kernel19LinearRecurrenceMatches) {
  auto seq = Workspace::standard(103);
  auto par = Workspace::standard(103);
  kernel19_linear_recurrence(seq);
  kernel19_parallel(par);
  expect_near(par.b5, seq.b5, seq.loop_n, 1e-7);
  EXPECT_NEAR(par.q, seq.q, 1e-7 * (1.0 + std::fabs(seq.q)));
}

TEST(LivermoreParallelTest, Kernel23FragmentMatches) {
  auto seq = Workspace::standard(104);
  auto par = Workspace::standard(104);
  kernel23_paper_fragment(seq);
  kernel23_fragment_parallel(par);
  expect_near(par.za.data(), seq.za.data(), seq.za.data().size(), 1e-8);
}

TEST(LivermoreParallelTest, Kernel23FragmentMatchesWithPool) {
  parallel::ThreadPool pool(4);
  core::OrdinaryIrOptions options;
  options.pool = &pool;
  auto seq = Workspace::standard(105);
  auto par = Workspace::standard(105);
  kernel23_paper_fragment(seq);
  kernel23_fragment_parallel(par, options);
  expect_near(par.za.data(), seq.za.data(), seq.za.data().size(), 1e-8);
}

TEST(LivermoreParallelTest, Kernel23SegmentedScanMatches) {
  auto seq = Workspace::standard(115);
  auto par = Workspace::standard(115);
  kernel23_paper_fragment(seq);
  kernel23_fragment_segmented(par);
  expect_near(par.za.data(), seq.za.data(), seq.za.data().size(), 1e-8);
}

TEST(LivermoreParallelTest, Kernel23ThreeRoutesAgree) {
  auto moebius = Workspace::standard(116);
  auto segmented = Workspace::standard(116);
  kernel23_fragment_parallel(moebius);
  kernel23_fragment_segmented(segmented);
  expect_near(moebius.za.data(), segmented.za.data(), segmented.za.data().size(), 1e-8);
}

TEST(LivermoreParallelTest, Kernel13PicMatchesExactly) {
  auto seq = Workspace::standard(106);
  auto par = Workspace::standard(106);
  kernel13_pic_2d(seq);
  kernel13_parallel(par);
  // Particle pushes are identical arithmetic: bitwise equality expected.
  EXPECT_EQ(par.p_k13.data(), seq.p_k13.data());
  // Histogram counts are small integers added to zero: exact too.
  EXPECT_EQ(par.h_k13.data(), seq.h_k13.data());
}

TEST(LivermoreParallelTest, Kernel14InspectorExecutorMatches) {
  auto seq = Workspace::standard(109);
  auto par = Workspace::standard(109);
  kernel14_pic_1d(seq);
  kernel14_parallel(par);
  // Particle phases are identical arithmetic; deposition is reassociated.
  EXPECT_EQ(par.xx, seq.xx);
  EXPECT_EQ(par.ir, seq.ir);
  expect_near(par.rh, seq.rh, seq.loop_n, 1e-9);
}

TEST(LivermoreParallelTest, Kernel14WithPoolMatches) {
  parallel::ThreadPool pool(4);
  auto seq = Workspace::standard(110);
  auto par = Workspace::standard(110);
  kernel14_pic_1d(seq);
  kernel14_parallel(par, &pool);
  expect_near(par.rh, seq.rh, seq.loop_n, 1e-9);
}

TEST(LivermoreParallelTest, Kernel13WithPoolMatches) {
  parallel::ThreadPool pool(4);
  auto seq = Workspace::standard(107);
  auto par = Workspace::standard(107);
  kernel13_pic_2d(seq);
  kernel13_parallel(par, &pool);
  EXPECT_EQ(par.h_k13.data(), seq.h_k13.data());
}

TEST(LivermoreParallelTest, Kernel21MatmulMatches) {
  auto seq = Workspace::standard(111);
  auto par = Workspace::standard(111);
  kernel21_matmul(seq);
  kernel21_parallel(par);
  for (std::size_t i = 0; i < 25; ++i) {
    for (std::size_t j = 0; j < 13; ++j) {
      EXPECT_NEAR(par.px.at(i, j), seq.px.at(i, j),
                  1e-9 * (1.0 + std::fabs(seq.px.at(i, j))))
          << i << "," << j;
    }
  }
}

TEST(LivermoreParallelTest, Kernel24ArgMinMatches) {
  auto seq = Workspace::standard(112);
  auto par = seq;
  EXPECT_EQ(kernel24_parallel(par), kernel24_first_min(seq));
  // Forced unique minimum.
  auto seq2 = Workspace::standard(113);
  seq2.x[421] = -7.0;
  auto par2 = seq2;
  EXPECT_EQ(kernel24_parallel(par2), 421.0);
  EXPECT_EQ(kernel24_first_min(seq2), 421.0);
  // Tie: the FIRST minimum must win in both.
  auto seq3 = Workspace::standard(114);
  seq3.x[100] = -3.0;
  seq3.x[600] = -3.0;
  auto par3 = seq3;
  EXPECT_EQ(kernel24_parallel(par3), 100.0);
  EXPECT_EQ(kernel24_first_min(seq3), 100.0);
}

TEST(LivermoreParallelTest, ScaledWorkspacesStillMatch) {
  for (std::size_t scale : {2u, 4u}) {
    auto seq = Workspace::standard(42, scale);
    auto par = Workspace::standard(42, scale);
    kernel05_tridiagonal(seq);
    kernel05_parallel(par);
    expect_near(par.x, seq.x, seq.loop_n, 1e-9);
  }
}

TEST(LivermoreParallelTest, ProcessorCapsDoNotChangeResults) {
  parallel::ThreadPool pool(4);
  auto seq = Workspace::standard(108);
  kernel05_tridiagonal(seq);
  for (std::size_t cap : {1u, 3u, 16u}) {
    auto par = Workspace::standard(108);
    core::OrdinaryIrOptions options;
    options.pool = &pool;
    options.processor_cap = cap;
    kernel05_parallel(par, options);
    expect_near(par.x, seq.x, seq.loop_n, 1e-9);
  }
}

}  // namespace
}  // namespace ir::livermore
