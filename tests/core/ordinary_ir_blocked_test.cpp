// Exercises the deprecated one-shot shims (core/compat.hpp) on purpose;
// the define keeps -Werror builds green without losing the diagnostic
// elsewhere.
#define IR_COMPAT_ALLOW_DEPRECATED
#include "core/compat.hpp"
#include "core/ordinary_ir_blocked.hpp"

#include <gtest/gtest.h>

#include "algebra/monoids.hpp"
#include "testing/random_systems.hpp"

namespace ir::core {
namespace {

using algebra::AddMonoid;
using algebra::ConcatMonoid;
using testing::random_initial_u64;
using testing::random_ordinary_system;

/// Kernel-5-style local chain: f(i) = i-1, g(i) = i.
OrdinaryIrSystem local_chain(std::size_t n) {
  OrdinaryIrSystem sys;
  sys.cells = n + 1;
  for (std::size_t i = 0; i < n; ++i) {
    sys.f.push_back(i);
    sys.g.push_back(i + 1);
  }
  return sys;
}

TEST(BlockedIrTest, EmptyAndSingle) {
  OrdinaryIrSystem empty{3, {}, {}};
  EXPECT_EQ(ordinary_ir_blocked(AddMonoid<std::uint64_t>{}, empty, {1, 2, 3}),
            (std::vector<std::uint64_t>{1, 2, 3}));
  OrdinaryIrSystem one{3, {0}, {1}};
  EXPECT_EQ(ordinary_ir_blocked(AddMonoid<std::uint64_t>{}, one, {1, 2, 3}),
            (std::vector<std::uint64_t>{1, 3, 3}));
}

TEST(BlockedIrTest, LocalChainIsWorkEfficient) {
  const std::size_t n = 4096;
  const auto sys = local_chain(n);
  std::vector<std::uint64_t> init(n + 1, 1);
  const auto op = AddMonoid<std::uint64_t>{};
  const auto expect = ordinary_ir_sequential(op, sys, init);

  BlockedIrStats stats;
  BlockedIrOptions options;
  options.blocks = 8;
  options.stats = &stats;
  EXPECT_EQ(ordinary_ir_blocked(op, sys, init, options), expect);
  EXPECT_EQ(stats.blocks, 8u);
  // Blocks 1..7 are entirely downstream of the cross-block head, so every
  // equation there is partial: 7/8 of n.
  EXPECT_EQ(stats.partials, n - n / 8);
  // Work stays O(n): one ⊙ per equation (minus the 7 op-free heads) plus
  // one per partial — far below pointer jumping's ~n·log2(n) = ~49k.
  EXPECT_EQ(stats.op_applications, (n - 7) + (n - n / 8));
  EXPECT_EQ(stats.resolve_rounds, 7u);
}

TEST(BlockedIrTest, ScatteredSystemDegradesGracefully) {
  support::SplitMix64 rng(91);
  const auto sys = random_ordinary_system(2000, 3000, rng, 0.9);
  const auto init = random_initial_u64(3000, rng);
  const auto op = AddMonoid<std::uint64_t>{};
  BlockedIrStats stats;
  BlockedIrOptions options;
  options.blocks = 16;
  options.stats = &stats;
  EXPECT_EQ(ordinary_ir_blocked(op, sys, init, options),
            ordinary_ir_sequential(op, sys, init));
  EXPECT_GT(stats.partials, 100u);  // scattered preds cross blocks often
}

TEST(BlockedIrTest, NonCommutativeOrderPreserved) {
  support::SplitMix64 rng(92);
  for (int trial = 0; trial < 6; ++trial) {
    const auto sys = random_ordinary_system(120, 200, rng, 0.8);
    std::vector<std::string> init(200);
    for (std::size_t c = 0; c < 200; ++c) init[c] = std::string(1, char('a' + c % 26));
    BlockedIrOptions options;
    options.blocks = 1 + static_cast<std::size_t>(trial);
    EXPECT_EQ(ordinary_ir_blocked(ConcatMonoid{}, sys, init, options),
              ordinary_ir_sequential(ConcatMonoid{}, sys, init))
        << "trial " << trial;
  }
}

TEST(BlockedIrTest, PooledMatches) {
  support::SplitMix64 rng(93);
  const auto sys = random_ordinary_system(3000, 4000, rng, 0.85);
  const auto init = random_initial_u64(4000, rng);
  const auto op = AddMonoid<std::uint64_t>{};
  parallel::ThreadPool pool(4);
  BlockedIrOptions options;
  options.pool = &pool;
  EXPECT_EQ(ordinary_ir_blocked(op, sys, init, options),
            ordinary_ir_sequential(op, sys, init));
}

TEST(BlockedIrTest, SingleBlockEqualsSequentialWork) {
  const std::size_t n = 1000;
  const auto sys = local_chain(n);
  std::vector<std::uint64_t> init(n + 1, 2);
  BlockedIrStats stats;
  BlockedIrOptions options;
  options.blocks = 1;
  options.stats = &stats;
  const auto op = AddMonoid<std::uint64_t>{};
  EXPECT_EQ(ordinary_ir_blocked(op, sys, init, options),
            ordinary_ir_sequential(op, sys, init));
  EXPECT_EQ(stats.partials, 0u);
  EXPECT_EQ(stats.op_applications, n);  // exactly one ⊙ per equation
  EXPECT_EQ(stats.resolve_rounds, 0u);
}

// Sweep across sizes, aliasing and block counts.
struct BlockedSweepParam {
  std::size_t iterations;
  std::size_t cells;
  double rewire;
  std::size_t blocks;
  std::uint64_t seed;
};

class BlockedIrSweepTest : public ::testing::TestWithParam<BlockedSweepParam> {};

TEST_P(BlockedIrSweepTest, MatchesSequential) {
  const auto p = GetParam();
  support::SplitMix64 rng(p.seed);
  const auto sys = random_ordinary_system(p.iterations, p.cells, rng, p.rewire);
  const auto init = random_initial_u64(p.cells, rng);
  const auto op = AddMonoid<std::uint64_t>{};
  BlockedIrOptions options;
  options.blocks = p.blocks;
  EXPECT_EQ(ordinary_ir_blocked(op, sys, init, options),
            ordinary_ir_sequential(op, sys, init));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BlockedIrSweepTest,
    ::testing::Values(BlockedSweepParam{1, 2, 0.0, 1, 1}, BlockedSweepParam{2, 3, 1.0, 2, 2},
                      BlockedSweepParam{50, 60, 0.5, 3, 3},
                      BlockedSweepParam{500, 700, 0.9, 7, 4},
                      BlockedSweepParam{1000, 1200, 0.2, 16, 5},
                      BlockedSweepParam{2048, 2048, 0.8, 64, 6},
                      BlockedSweepParam{333, 999, 1.0, 333, 7},
                      BlockedSweepParam{100, 150, 0.7, 1000, 8}));

}  // namespace
}  // namespace ir::core
