file(REMOVE_RECURSE
  "libir_algebra.a"
)
