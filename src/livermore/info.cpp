#include "livermore/info.hpp"

#include "livermore/kernels.hpp"
#include "support/contract.hpp"

namespace ir::livermore {

namespace {

using core::GeneralIrSystem;

/// Tiny arena for the flat virtual cell space a kernel model lives in:
/// every array (and every carried scalar) gets a contiguous block.
struct CellSpace {
  std::size_t next = 0;
  std::size_t block(std::size_t count) {
    const std::size_t base = next;
    next += count;
    return base;
  }
};

/// Equation sink: append one binary equation A[g] = op(A[f], A[h]).
struct ModelBuilder {
  GeneralIrSystem sys;
  void equation(std::size_t f, std::size_t g, std::size_t h) {
    sys.f.push_back(f);
    sys.g.push_back(g);
    sys.h.push_back(h);
  }
  GeneralIrSystem finish(const CellSpace& space) {
    sys.cells = space.next;
    return std::move(sys);
  }
};

// --- Per-kernel models -----------------------------------------------------
// Each model materializes the recurrence-carrying loop of the kernel as
// (f, g, h) index maps over a flat virtual cell space, in the kernel's
// sequential program order.  Where a statement has more than two operands the
// model keeps the two that carry the flow dependences (noted per kernel) —
// classification only needs which earlier writes are read, not the full
// arithmetic.

GeneralIrSystem model_k1(const Workspace& ws) {
  const std::size_t n = ws.loop_n;
  CellSpace space;
  ModelBuilder mb;
  const std::size_t x = space.block(n), z = space.block(n + 32), y = space.block(n);
  for (std::size_t k = 0; k < n; ++k) mb.equation(z + k + 10, x + k, y + k);
  return mb.finish(space);
}

GeneralIrSystem model_k2(const Workspace&) {
  const std::size_t n = 500;
  CellSpace space;
  ModelBuilder mb;
  const std::size_t x = space.block(2 * n + 4);
  std::size_t ii = n, ipntp = 0;
  while (ii > 0) {
    const std::size_t ipnt = ipntp;
    ipntp += ii;
    ii /= 2;
    std::size_t i = ipntp;
    for (std::size_t k = ipnt + 1; k < ipntp; k += 2) {
      ++i;
      // x[i-1] = x[k] - v[k]*x[k-1] - v[k+1]*x[k+1]: keep the two x reads
      // beyond x[k] that carry the cross-pass dependences.
      mb.equation(x + k - 1, x + i - 1, x + k + 1);
    }
  }
  return mb.finish(space);
}

GeneralIrSystem model_k3(const Workspace& ws) {
  const std::size_t n = ws.loop_n;
  CellSpace space;
  ModelBuilder mb;
  const std::size_t q = space.block(1), in = space.block(n);
  for (std::size_t k = 0; k < n; ++k) mb.equation(in + k, q, q);
  return mb.finish(space);
}

GeneralIrSystem model_k5(const Workspace& ws) {
  const std::size_t n = ws.loop_n;
  CellSpace space;
  ModelBuilder mb;
  const std::size_t x = space.block(n);
  for (std::size_t i = 1; i < n; ++i) mb.equation(x + i - 1, x + i, x + i);
  return mb.finish(space);
}

GeneralIrSystem model_k6(const Workspace& ws) {
  const std::size_t n = ws.loop_2d;
  CellSpace space;
  ModelBuilder mb;
  const std::size_t w = space.block(n);
  for (std::size_t i = 1; i < n; ++i) {
    for (std::size_t k = 0; k < i; ++k) {
      mb.equation(w + (i - k) - 1, w + i, w + i);  // w[i] += b*w[i-k-1]
    }
  }
  return mb.finish(space);
}

GeneralIrSystem model_k7(const Workspace& ws) {
  const std::size_t n = ws.loop_n;
  CellSpace space;
  ModelBuilder mb;
  const std::size_t x = space.block(n), u = space.block(n + 8), z = space.block(n);
  for (std::size_t k = 0; k < n; ++k) mb.equation(u + k + 6, x + k, z + k);
  return mb.finish(space);
}

GeneralIrSystem model_k8(const Workspace& ws) {
  CellSpace space;
  ModelBuilder mb;
  const std::size_t cols = (ws.loop_2d + 2) * 5;
  const std::size_t u1 = space.block(4 * cols);
  auto cell = [&](std::size_t kx, std::size_t ky, std::size_t plane) {
    return u1 + kx * cols + ky * 5 + plane;
  };
  for (std::size_t kx = 1; kx < 3; ++kx) {
    for (std::size_t ky = 1; ky < ws.loop_2d; ++ky) {
      // Writes plane 1, reads only plane 0 (never written): streaming.
      mb.equation(cell(kx, ky + 1, 0), cell(kx, ky, 1), cell(kx - 1, ky, 0));
    }
  }
  return mb.finish(space);
}

GeneralIrSystem model_k9(const Workspace& ws) {
  const std::size_t n = ws.loop_n;
  CellSpace space;
  ModelBuilder mb;
  const std::size_t px = space.block((n + 1) * 13);
  for (std::size_t i = 0; i < n; ++i) {
    mb.equation(px + i * 13 + 12, px + i * 13 + 0, px + i * 13 + 2);
  }
  return mb.finish(space);
}

GeneralIrSystem model_k10(const Workspace& ws) {
  const std::size_t n = ws.loop_n;
  CellSpace space;
  ModelBuilder mb;
  const std::size_t px = space.block((n + 1) * 13), cx = space.block((n + 1) * 13);
  for (std::size_t i = 0; i < n; ++i) {
    // Cascade: new px(i,j) = new px(i,j-1) - old px(i,j), seeded from cx.
    mb.equation(cx + i * 13 + 4, px + i * 13 + 4, px + i * 13 + 4);
    for (std::size_t j = 5; j < 13; ++j) {
      mb.equation(px + i * 13 + j - 1, px + i * 13 + j, px + i * 13 + j);
    }
  }
  return mb.finish(space);
}

GeneralIrSystem model_k11(const Workspace& ws) {
  const std::size_t n = ws.loop_n;
  CellSpace space;
  ModelBuilder mb;
  const std::size_t x = space.block(n), y = space.block(n);
  for (std::size_t k = 1; k < n; ++k) mb.equation(x + k - 1, x + k, y + k);
  return mb.finish(space);
}

GeneralIrSystem model_k12(const Workspace& ws) {
  const std::size_t n = ws.loop_n;
  CellSpace space;
  ModelBuilder mb;
  const std::size_t x = space.block(n), y = space.block(n + 1);
  for (std::size_t k = 0; k < n; ++k) mb.equation(y + k + 1, x + k, y + k);
  return mb.finish(space);
}

GeneralIrSystem model_k15(const Workspace& ws) {
  const std::size_t ng = 7, nz = ws.loop_2d;
  CellSpace space;
  ModelBuilder mb;
  const std::size_t vs = space.block((nz + 1) * 7), ve = space.block((nz + 1) * 7);
  auto vsc = [&](std::size_t k, std::size_t j) { return vs + k * 7 + j; };
  auto vec = [&](std::size_t k, std::size_t j) { return ve + k * 7 + j; };
  for (std::size_t j = 1; j < ng - 1; ++j) {
    for (std::size_t k = 1; k < nz - 1; ++k) {
      mb.equation(vsc(k, j + 1), vsc(k, j), vsc(k, j));      // vs update
      mb.equation(vsc(k - 1, j), vec(k, j), vec(k - 1, j));  // ve update
    }
  }
  return mb.finish(space);
}

GeneralIrSystem model_k17(const Workspace& ws) {
  const std::size_t n = ws.loop_n;
  CellSpace space;
  ModelBuilder mb;
  // The carried state is the scalar pair (xnm, e6): one virtual cell per
  // loop step so the chain structure is explicit.
  const std::size_t xnm = space.block(n + 1), vlr = space.block(n);
  for (std::size_t s = 0; s < n; ++s) mb.equation(xnm + s, xnm + s + 1, vlr + s);
  return mb.finish(space);
}

GeneralIrSystem model_k18(const Workspace& ws) {
  const std::size_t kn = ws.loop_2d, jn = 6;
  CellSpace space;
  ModelBuilder mb;
  const std::size_t r2 = kn + 2;
  const std::size_t za = space.block(r2 * 7), zb = space.block(r2 * 7);
  const std::size_t zu = space.block(r2 * 7), zv = space.block(r2 * 7);
  const std::size_t zr = space.block(r2 * 7), zz = space.block(r2 * 7);
  auto cell = [&](std::size_t base, std::size_t k, std::size_t j) {
    return base + k * 7 + j;
  };
  for (std::size_t k = 1; k < kn; ++k) {
    for (std::size_t j = 1; j < jn; ++j) {
      // Sweep 1 writes za/zb from zp/zq/zr/zm (none written): streaming.
      mb.equation(cell(zr, k, j), cell(za, k, j), cell(za, k, j));
      mb.equation(cell(zr, k - 1, j), cell(zb, k, j), cell(zb, k, j));
    }
  }
  for (std::size_t k = 1; k < kn; ++k) {
    for (std::size_t j = 1; j < jn; ++j) {
      // Sweep 2 reads sweep-1 results at neighbour offsets: two flow deps.
      mb.equation(cell(za, k, j), cell(zu, k, j), cell(zb, k + 1, j));
      mb.equation(cell(za, k, j - 1), cell(zv, k, j), cell(zb, k, j));
    }
  }
  for (std::size_t k = 1; k < kn; ++k) {
    for (std::size_t j = 1; j < jn; ++j) {
      // Sweep 3: zr += t*zu, zz += t*zv.
      mb.equation(cell(zu, k, j), cell(zr, k, j), cell(zr, k, j));
      mb.equation(cell(zv, k, j), cell(zz, k, j), cell(zz, k, j));
    }
  }
  return mb.finish(space);
}

GeneralIrSystem model_k19(const Workspace& ws) {
  const std::size_t n = ws.loop_n;
  CellSpace space;
  ModelBuilder mb;
  // Carried scalar stb5, one virtual cell per step across both sweeps.
  const std::size_t stb5 = space.block(2 * n + 1), sa = space.block(n);
  for (std::size_t s = 0; s < 2 * n; ++s) mb.equation(stb5 + s, stb5 + s + 1, sa + s % n);
  return mb.finish(space);
}

GeneralIrSystem model_k20(const Workspace& ws) {
  const std::size_t n = ws.loop_n;
  CellSpace space;
  ModelBuilder mb;
  const std::size_t xx = space.block(n + 1), u = space.block(n);
  for (std::size_t k = 0; k < n; ++k) mb.equation(xx + k, xx + k + 1, u + k);
  return mb.finish(space);
}

GeneralIrSystem model_k21(const Workspace&) {
  const std::size_t rows = 25, inner = 25, cols = 13;
  CellSpace space;
  ModelBuilder mb;
  const std::size_t px = space.block(rows * cols), vy = space.block(rows * inner);
  for (std::size_t k = 0; k < inner; ++k) {
    for (std::size_t i = 0; i < rows; ++i) {
      for (std::size_t j = 0; j < cols; ++j) {
        mb.equation(vy + i * inner + k, px + i * cols + j, px + i * cols + j);
      }
    }
  }
  return mb.finish(space);
}

GeneralIrSystem model_k22(const Workspace& ws) {
  const std::size_t n = ws.loop_n;
  CellSpace space;
  ModelBuilder mb;
  const std::size_t w = space.block(n), xin = space.block(n), u = space.block(n);
  for (std::size_t k = 0; k < n; ++k) {
    // y[k] is a forward-substitutable temporary (written then read within
    // iteration k only), so the iteration reduces to one streaming equation.
    mb.equation(u + k, w + k, xin + k);
  }
  return mb.finish(space);
}

GeneralIrSystem model_k23(const Workspace& ws) {
  const std::size_t kn = ws.loop_2d, jn = 6;
  CellSpace space;
  ModelBuilder mb;
  const std::size_t za = space.block((kn + 2) * 7);
  auto cell = [&](std::size_t k, std::size_t j) { return za + k * 7 + j; };
  for (std::size_t k = 1; k < kn; ++k) {
    for (std::size_t j = 1; j < jn; ++j) {
      // Both za(k,j-1) (written this row) and za(k-1,j) (written last row)
      // carry flow dependences: a genuine tree-shaped trace.
      mb.equation(cell(k, j - 1), cell(k, j), cell(k - 1, j));
    }
  }
  return mb.finish(space);
}

GeneralIrSystem model_k24(const Workspace& ws) {
  const std::size_t n = ws.loop_n;
  CellSpace space;
  ModelBuilder mb;
  const std::size_t m = space.block(1), x = space.block(n);
  for (std::size_t k = 1; k < n; ++k) mb.equation(x + k, m, m);
  return mb.finish(space);
}

}  // namespace

std::optional<GeneralIrSystem> ir_model(int id, const Workspace& ws) {
  switch (id) {
    case 1: return model_k1(ws);
    case 2: return model_k2(ws);
    case 3: return model_k3(ws);
    case 5: return model_k5(ws);
    case 6: return model_k6(ws);
    case 7: return model_k7(ws);
    case 8: return model_k8(ws);
    case 9: return model_k9(ws);
    case 10: return model_k10(ws);
    case 11: return model_k11(ws);
    case 12: return model_k12(ws);
    case 15: return model_k15(ws);
    case 17: return model_k17(ws);
    case 18: return model_k18(ws);
    case 19: return model_k19(ws);
    case 20: return model_k20(ws);
    case 21: return model_k21(ws);
    case 22: return model_k22(ws);
    case 23: return model_k23(ws);
    case 24: return model_k24(ws);
    default: return std::nullopt;  // 4, 13, 14, 16: see classification_table
  }
}

std::vector<KernelInfo> classification_table(const Workspace& ws) {
  using core::LoopClass;
  std::vector<KernelInfo> table;

  struct Hand {
    int id;
    LoopClass cls;
    bool in_frame;
    const char* why;
  };
  const Hand hand[] = {
      {4, LoopClass::kNoRecurrence, true,
       "band reads precede the band's single write; bands do not overlap"},
      {13, LoopClass::kGeneralIndexed, false,
       "histogram scatter h[j2][i2] += 1 with data-dependent indices; maps "
       "recoverable by an inspector pass (see livermore/parallel.hpp)"},
      {14, LoopClass::kGeneralIndexed, false,
       "charge deposition rh[ir[k]] += ... with data-dependent colliding indices; "
       "recovered by the inspector (core/inspector.hpp) and solved as GIR"},
      {16, LoopClass::kGeneralIndexed, false,
       "loop-carried control flow (data-dependent stride): outside the IR frame"},
  };

  const char* mech_note[25] = {};
  mech_note[1] = "x[k] from y/z only: no iteration reads an earlier write";
  mech_note[2] = "halving passes re-read x written by earlier passes at two offsets";
  mech_note[3] = "scalar reduction: q depends on the previous iteration's q";
  mech_note[5] = "x[i] reads x[i-1]: first-order chain";
  mech_note[6] = "w[i] reads every earlier w: repeated writes, many-operand trace";
  mech_note[7] = "streaming expression over read-only arrays";
  mech_note[8] = "writes plane 1, reads plane 0 only";
  mech_note[9] = "row-local predictor update";
  mech_note[10] = "row-local 9-step cascades (binary-op approximation of the "
                  "3-operand difference chain); independent across rows";
  mech_note[11] = "prefix sum: x[k] reads x[k-1]";
  mech_note[12] = "x from y only";
  mech_note[15] = "ve(k,j) reads vs(k-1,j) and ve(k-1,j): two flow deps per step";
  mech_note[17] = "carried scalar chain (classified on structure; the conditional "
                  "update is not a fixed associative op, hence out of frame)";
  mech_note[18] = "sweep 2 reads sweep-1 results at neighbour offsets: tree traces";
  mech_note[19] = "carried scalar stb5: first-order chain across both sweeps";
  mech_note[20] = "xx[k+1] reads xx[k] (coefficients data-dependent: the Moebius "
                  "route does not apply, see EXPERIMENTS.md)";
  mech_note[21] = "reduction chains per px(i,j), interleaved by the k loop: "
                  "indexed, not one linear chain";
  mech_note[22] = "two streaming statements over read-only inputs";
  mech_note[23] = "za(k,j) reads za(k,j-1) and za(k-1,j): tree traces; the paper's "
                  "fragment keeps only the column dependence (ordinary IR)";
  mech_note[24] = "argmin reduction: carried scalar m";

  for (int id = 1; id <= kKernelCount; ++id) {
    KernelInfo info;
    info.id = id;
    info.name = kernel_name(id);
    if (auto model = ir_model(id, ws)) {
      info.cls = core::classify(*model);
      info.mechanized = true;
      info.in_ir_frame = (id != 17);
      info.rationale = mech_note[id] != nullptr ? mech_note[id] : "";
    } else {
      for (const auto& h : hand) {
        if (h.id == id) {
          info.cls = h.cls;
          info.mechanized = false;
          info.in_ir_frame = h.in_frame;
          info.rationale = h.why;
        }
      }
    }
    info.parallelized = (id == 3 || id == 5 || id == 11 || id == 13 || id == 14 ||
                         id == 19 || id == 21 || id == 23 || id == 24);
    table.push_back(std::move(info));
  }
  return table;
}

std::vector<std::size_t> class_histogram(const std::vector<KernelInfo>& table) {
  std::vector<std::size_t> histogram(4, 0);
  for (const auto& info : table) {
    histogram[static_cast<std::size_t>(info.cls)]++;
  }
  return histogram;
}

}  // namespace ir::livermore
