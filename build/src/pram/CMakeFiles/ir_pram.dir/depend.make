# Empty dependencies file for ir_pram.
# This may be replaced when dependencies are built.
