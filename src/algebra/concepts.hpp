// Operator concepts for the IR solvers.
//
// The paper's three algorithm classes place increasingly strong requirements
// on the loop's binary operator ⊙:
//   * Ordinary IR   — ⊙ associative            (order of operands preserved)
//   * Linear IR     — ⊙ is Möbius composition  (built by the library)
//   * General IR    — ⊙ associative AND commutative, with an atomic power
//                     a^k (the paper's assumption that lets Fibonacci-length
//                     traces be evaluated in O(log) steps).
// These concepts encode the requirements so misuse fails at compile time:
// e.g. a string-concatenation monoid satisfies BinaryOperation (Ordinary IR
// accepts it) but not PowerOperation (General IR rejects it).
#pragma once

#include <concepts>

#include "support/bigint.hpp"
#include "support/contract.hpp"

namespace ir::algebra {

/// An associative binary operation over Op::Value.
/// Associativity itself is a semantic contract (checked by property tests,
/// not expressible in the type system).
template <typename Op>
concept BinaryOperation = requires(const Op op, const typename Op::Value& a,
                                   const typename Op::Value& b) {
  typename Op::Value;
  { op.combine(a, b) } -> std::convertible_to<typename Op::Value>;
};

/// A commutative associative operation with an atomic power a^k for
/// (possibly huge) BigUint exponents k >= 1.
template <typename Op>
concept PowerOperation = BinaryOperation<Op> &&
    requires(const Op op, const typename Op::Value& a, const support::BigUint& k) {
      { op.pow(a, k) } -> std::convertible_to<typename Op::Value>;
      requires Op::is_commutative;
    };

/// Square-and-multiply fallback for monoids without a closed-form power.
/// Requires exponent >= 1 (no identity element is assumed — IR traces always
/// contain each leaf at least once when its exponent is present).
template <typename Op>
  requires BinaryOperation<Op>
typename Op::Value generic_pow(const Op& op, const typename Op::Value& base,
                               const support::BigUint& exponent) {
  IR_REQUIRE(!exponent.is_zero(), "generic_pow requires exponent >= 1");
  const std::size_t bits = exponent.bit_length();
  typename Op::Value result = base;
  for (std::size_t i = bits - 1; i-- > 0;) {
    result = op.combine(result, result);
    if (exponent.bit(i)) result = op.combine(result, base);
  }
  return result;
}

}  // namespace ir::algebra
