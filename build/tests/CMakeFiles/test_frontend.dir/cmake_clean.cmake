file(REMOVE_RECURSE
  "CMakeFiles/test_frontend.dir/frontend/affine_test.cpp.o"
  "CMakeFiles/test_frontend.dir/frontend/affine_test.cpp.o.d"
  "CMakeFiles/test_frontend.dir/frontend/fuzz_test.cpp.o"
  "CMakeFiles/test_frontend.dir/frontend/fuzz_test.cpp.o.d"
  "CMakeFiles/test_frontend.dir/frontend/livermore_dsl_test.cpp.o"
  "CMakeFiles/test_frontend.dir/frontend/livermore_dsl_test.cpp.o.d"
  "CMakeFiles/test_frontend.dir/frontend/lower_test.cpp.o"
  "CMakeFiles/test_frontend.dir/frontend/lower_test.cpp.o.d"
  "CMakeFiles/test_frontend.dir/frontend/parser_test.cpp.o"
  "CMakeFiles/test_frontend.dir/frontend/parser_test.cpp.o.d"
  "CMakeFiles/test_frontend.dir/frontend/transform_test.cpp.o"
  "CMakeFiles/test_frontend.dir/frontend/transform_test.cpp.o.d"
  "test_frontend"
  "test_frontend.pdb"
  "test_frontend[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
