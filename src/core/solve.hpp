// The front door: analyze a system and dispatch it to the best solver.
//
// This is the workflow the paper implies for a parallelizing compiler:
// classify the loop from its index maps alone, then route —
//
//   no recurrence      -> one elementwise parallel step
//   ordinary (h = g,
//   g injective)       -> trace concatenation; the blocked two-level solver
//                         when dependences are block-local, pointer jumping
//                         otherwise (decided from the analyzer's cross-block
//                         fraction)
//   everything else    -> general IR via CAP (requires a commutative power
//                         monoid, enforced at compile time)
//
// The OrdinaryIrSystem overload accepts any associative op (no GIR fallback
// can be needed); the GeneralIrSystem overload requires a PowerOperation.
#pragma once

#include "core/analyze.hpp"
#include "core/general_ir.hpp"
#include "core/ordinary_ir.hpp"
#include "core/ordinary_ir_blocked.hpp"
#include "parallel/parallel_for.hpp"

namespace ir::core {

/// Options for the routing solver.
struct SolveOptions {
  parallel::ThreadPool* pool = nullptr;

  /// Skip dead equations on the GIR route (see GeneralIrOptions::prune_dead).
  bool prune_dead = true;

  /// Cross-block dependence fraction below which the ordinary route prefers
  /// the work-efficient blocked solver over pointer jumping.
  double blocked_threshold = 0.25;

  /// If non-null, receives the analysis report the routing was based on.
  SystemReport* report_out = nullptr;
};

namespace detail {

/// Elementwise route: every equation reads only pre-loop values, so each
/// written cell is just its final writer's single ⊙ application.
template <algebra::BinaryOperation Op>
std::vector<typename Op::Value> solve_elementwise(const Op& op, const GeneralIrSystem& sys,
                                                  std::vector<typename Op::Value> initial,
                                                  parallel::ThreadPool* pool) {
  const std::vector<std::size_t> last = final_writer(sys.g, sys.cells);
  std::vector<typename Op::Value> result = initial;
  auto eval = [&](std::size_t cell) {
    const std::size_t i = last[cell];
    if (i != kNone) result[cell] = op.combine(initial[sys.f[i]], initial[sys.h[i]]);
  };
  if (pool != nullptr) {
    parallel::parallel_for(*pool, sys.cells, eval);
  } else {
    for (std::size_t cell = 0; cell < sys.cells; ++cell) eval(cell);
  }
  return result;
}

/// Pick blocked vs one-level jumping from the report's cross-block profile.
inline bool prefer_blocked(const SystemReport& report, std::size_t blocks,
                           double threshold) {
  for (const auto& [b, fraction] : report.cross_block_fraction) {
    if (b >= blocks) return fraction < threshold;
  }
  return !report.cross_block_fraction.empty() &&
         report.cross_block_fraction.back().second < threshold;
}

}  // namespace detail

/// Route-and-solve an ordinary IR system (any associative op).
template <algebra::BinaryOperation Op>
std::vector<typename Op::Value> solve(const Op& op, const OrdinaryIrSystem& sys,
                                      std::vector<typename Op::Value> initial,
                                      const SolveOptions& options = {}) {
  const SystemReport report = analyze(sys);
  if (options.report_out != nullptr) *options.report_out = report;
  if (report.dependences == 0) {
    GeneralIrSystem gir = GeneralIrSystem::from_ordinary(sys);
    return detail::solve_elementwise(op, gir, std::move(initial), options.pool);
  }
  const std::size_t blocks = options.pool != nullptr ? options.pool->size() : 4;
  if (detail::prefer_blocked(report, blocks, options.blocked_threshold)) {
    BlockedIrOptions blocked;
    blocked.pool = options.pool;
    return ordinary_ir_blocked(op, sys, std::move(initial), blocked);
  }
  OrdinaryIrOptions jumping;
  jumping.pool = options.pool;
  return ordinary_ir_parallel(op, sys, std::move(initial), jumping);
}

/// Route-and-solve a general IR system (commutative power monoid required —
/// the general route may need it; ordinary-shaped inputs are still steered
/// to the cheaper solvers).
template <algebra::PowerOperation Op>
std::vector<typename Op::Value> solve(const Op& op, const GeneralIrSystem& sys,
                                      std::vector<typename Op::Value> initial,
                                      const SolveOptions& options = {}) {
  const SystemReport report = analyze(sys);
  if (options.report_out != nullptr) *options.report_out = report;

  if (report.dependences == 0) {
    return detail::solve_elementwise(op, sys, std::move(initial), options.pool);
  }

  const bool ordinary_shaped = (sys.h == sys.g) && report.repeated_writes == 0;
  if (ordinary_shaped) {
    OrdinaryIrSystem ord;
    ord.cells = sys.cells;
    ord.f = sys.f;
    ord.g = sys.g;
    return solve(op, ord, std::move(initial), options);
  }

  GeneralIrOptions gir;
  gir.pool = options.pool;
  gir.prune_dead = options.prune_dead;
  return general_ir_parallel(op, sys, std::move(initial), gir);
}

}  // namespace ir::core
