#include "core/serialize.hpp"

#include <gtest/gtest.h>

#include "testing/random_systems.hpp"

namespace ir::core {
namespace {

TEST(SerializeSystemTest, RoundTripsHandWritten) {
  GeneralIrSystem sys{8, {0, 1, 3}, {1, 3, 5}, {1, 3, 5}};
  const auto text = to_text(sys);
  const auto back = system_from_text(text);
  EXPECT_EQ(back.cells, sys.cells);
  EXPECT_EQ(back.f, sys.f);
  EXPECT_EQ(back.g, sys.g);
  EXPECT_EQ(back.h, sys.h);
}

TEST(SerializeSystemTest, RoundTripsRandom) {
  support::SplitMix64 rng(31337);
  for (int trial = 0; trial < 5; ++trial) {
    const auto sys = testing::random_general_system(200, 120, rng, 0.6);
    const auto back = system_from_text(to_text(sys));
    EXPECT_EQ(back.f, sys.f);
    EXPECT_EQ(back.g, sys.g);
    EXPECT_EQ(back.h, sys.h);
  }
}

TEST(SerializeSystemTest, OrdinarySerializesAsGirEmbedding) {
  OrdinaryIrSystem ord{4, {0, 1}, {1, 2}};
  const auto back = system_from_text(to_text(ord));
  EXPECT_EQ(back.h, back.g);
}

TEST(SerializeSystemTest, CommentsAndBlanksIgnored) {
  const char* text = R"(# a comment
ir-system v1

cells 4   # trailing comment
equations 1
0 1 1
)";
  const auto sys = system_from_text(text);
  EXPECT_EQ(sys.cells, 4u);
  EXPECT_EQ(sys.iterations(), 1u);
}

TEST(SerializeSystemTest, DiagnosticsCarryLineNumbers) {
  try {
    (void)system_from_text("ir-system v1\ncells 4\nequations 1\n0 x 1\n");
    FAIL() << "expected throw";
  } catch (const support::ContractViolation& error) {
    EXPECT_NE(std::string(error.what()).find("line 4"), std::string::npos);
  }
}

TEST(SerializeSystemTest, RejectsMalformedDocuments) {
  EXPECT_THROW((void)system_from_text(""), support::ContractViolation);
  EXPECT_THROW((void)system_from_text("not-a-header\n"), support::ContractViolation);
  EXPECT_THROW((void)system_from_text("ir-system v1\ncells 4\n"),
               support::ContractViolation);
  // Too few equations.
  EXPECT_THROW((void)system_from_text("ir-system v1\ncells 4\nequations 2\n0 1 1\n"),
               support::ContractViolation);
  // Trailing garbage.
  EXPECT_THROW(
      (void)system_from_text("ir-system v1\ncells 4\nequations 1\n0 1 1\nextra\n"),
      support::ContractViolation);
  // Out-of-range index caught by validate().
  EXPECT_THROW((void)system_from_text("ir-system v1\ncells 2\nequations 1\n0 5 1\n"),
               support::ContractViolation);
}

TEST(SerializeSystemTest, OverflowSizedCountsRejectedWithLineNumbers) {
  // A declared count larger than the document can physically hold must be a
  // parse error with a line number, never a vector::reserve length_error or
  // bad_alloc (the fuzzer's overflow-count mutation).
  try {
    (void)system_from_text(
        "ir-system v1\ncells 4\nequations 18446744073709551615\n");
    FAIL() << "expected throw";
  } catch (const support::ContractViolation& error) {
    EXPECT_NE(std::string(error.what()).find("line 3"), std::string::npos)
        << error.what();
  }
  EXPECT_THROW(
      (void)system_from_text("ir-system v1\ncells 4\nequations 99999999999999999\n"),
      support::ContractViolation);
}

TEST(SerializeSystemTest, DuplicateHeadersRejected) {
  EXPECT_THROW((void)system_from_text("ir-system v1\nir-system v1\ncells 2\n"
                                      "equations 1\n0 1 1\n"),
               support::ContractViolation);
  EXPECT_THROW((void)system_from_text("ir-system v1\ncells 2\ncells 2\n"
                                      "equations 1\n0 1 1\n"),
               support::ContractViolation);
  EXPECT_THROW((void)system_from_text("ir-system v1\ncells 2\nequations 1\n"
                                      "equations 1\n0 1 1\n"),
               support::ContractViolation);
}

TEST(SerializeValuesTest, RoundTripsExactly) {
  const std::vector<double> values{0.0, -1.5, 3.14159265358979, 1e-300, 1e300, 42.0};
  const auto back = values_from_text(to_text(values));
  ASSERT_EQ(back.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(back[i], values[i]) << i;  // shortest round-trip is lossless
  }
}

TEST(SerializeValuesTest, GoldenDoubleEmission) {
  // Pin the canonical rendering byte-for-byte: std::to_chars shortest
  // round-trip form, same as the system serializer.  The old %.17g path
  // emitted "3.1415926535897931" and "9.9999999999999997e+305" here — any
  // drift between the two serializers (or a regression back to printf)
  // breaks this golden.
  const std::vector<double> values{0.0,       -1.5,   0.1,    3.14159265358979,
                                   1e-300,    1e306,  -0.0,   42.0};
  EXPECT_EQ(to_text(values),
            "ir-values v1\ncount 8\n"
            "0 -1.5 0.1 3.14159265358979 1e-300 1e+306 -0 42\n");
}

TEST(SerializeValuesTest, EmptyArray) {
  const auto back = values_from_text(to_text(std::vector<double>{}));
  EXPECT_TRUE(back.empty());
}

TEST(SerializeValuesTest, CanonicalEmissionHasNoTrailingSpaces) {
  // Counts not divisible by the 8-per-line wrap used to emit "value \n" on
  // the final line; canonical emission separates values only *between* them.
  EXPECT_EQ(to_text(std::vector<double>{1.0, 2.0, 3.0}),
            "ir-values v1\ncount 3\n1 2 3\n");
  EXPECT_EQ(to_text(std::vector<double>{1.0}), "ir-values v1\ncount 1\n1\n");
  for (std::size_t count : {1u, 3u, 7u, 8u, 9u, 16u, 17u}) {
    std::vector<double> values(count);
    for (std::size_t i = 0; i < count; ++i) values[i] = 0.25 * static_cast<double>(i);
    const std::string text = to_text(values);
    EXPECT_EQ(text.find(" \n"), std::string::npos) << "count " << count;
    EXPECT_EQ(text.back(), '\n') << "count " << count;
    // Byte-exact round trip: parse then re-emit reproduces the same bytes.
    EXPECT_EQ(to_text(values_from_text(text)), text) << "count " << count;
  }
}

TEST(SerializeValuesTest, OverflowSizedCountRejectedWithLineNumber) {
  try {
    (void)values_from_text("ir-values v1\ncount 18446744073709551615\n");
    FAIL() << "expected throw";
  } catch (const support::ContractViolation& error) {
    EXPECT_NE(std::string(error.what()).find("line 2"), std::string::npos)
        << error.what();
  }
}

TEST(SerializeValuesTest, CountMismatchRejected) {
  EXPECT_THROW((void)values_from_text("ir-values v1\ncount 3\n1 2\n"),
               support::ContractViolation);
  EXPECT_THROW((void)values_from_text("ir-values v1\ncount 1\n1 2\n"),
               support::ContractViolation);
}

}  // namespace
}  // namespace ir::core
