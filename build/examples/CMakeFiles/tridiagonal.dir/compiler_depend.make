# Empty compiler generated dependencies file for tridiagonal.
# This may be replaced when dependencies are built.
