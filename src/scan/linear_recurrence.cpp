#include "scan/linear_recurrence.hpp"

#include "algebra/concepts.hpp"
#include "scan/prefix_scan.hpp"
#include "support/contract.hpp"

namespace ir::scan {

namespace {

/// Composition of affine maps, ordered so that combine(earlier, later) is
/// "apply earlier first": (later ∘ earlier)(u) = later.coeff·(earlier(u)) + later.offset.
struct AffineCompose {
  using Value = AffinePair;
  static constexpr bool is_commutative = false;
  Value combine(const Value& earlier, const Value& later) const {
    return AffinePair{later.coeff * earlier.coeff,
                      later.coeff * earlier.offset + later.offset};
  }
};

static_assert(algebra::BinaryOperation<AffineCompose>);

}  // namespace

std::vector<double> linear_recurrence_sequential(std::span<const double> a,
                                                 std::span<const double> b, double x0) {
  IR_REQUIRE(a.size() == b.size(), "coefficient arrays must have equal length");
  std::vector<double> x(a.size());
  double prev = x0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    prev = a[i] * prev + b[i];
    x[i] = prev;
  }
  return x;
}

std::vector<double> linear_recurrence_scan(std::span<const double> a,
                                           std::span<const double> b, double x0,
                                           parallel::ThreadPool* pool) {
  IR_REQUIRE(a.size() == b.size(), "coefficient arrays must have equal length");
  std::vector<AffinePair> maps(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) maps[i] = AffinePair{a[i], b[i]};
  inclusive_scan_kogge_stone(AffineCompose{}, maps, pool);
  std::vector<double> x(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) x[i] = maps[i].coeff * x0 + maps[i].offset;
  return x;
}

}  // namespace ir::scan
