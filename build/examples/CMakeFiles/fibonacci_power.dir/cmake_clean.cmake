file(REMOVE_RECURSE
  "CMakeFiles/fibonacci_power.dir/fibonacci_power.cpp.o"
  "CMakeFiles/fibonacci_power.dir/fibonacci_power.cpp.o.d"
  "fibonacci_power"
  "fibonacci_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fibonacci_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
