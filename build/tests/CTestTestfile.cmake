# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_pram[1]_include.cmake")
include("/root/repo/build/tests/test_parallel[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_algebra[1]_include.cmake")
include("/root/repo/build/tests/test_scan[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_frontend[1]_include.cmake")
include("/root/repo/build/tests/test_livermore[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
