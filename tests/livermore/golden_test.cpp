// Golden regression checksums: every kernel's output on the standard
// workspace (seed 1997) is pinned.  Any change to kernel code, workspace
// initialization, or the RNG shows up here first — the numbers were
// recorded from the initial verified implementation.
#include <gtest/gtest.h>

#include <cmath>

#include "livermore/kernels.hpp"

namespace ir::livermore {
namespace {

TEST(GoldenChecksumTest, AllKernelsMatchRecordedValues) {
  // Regenerate with: for id in 1..24 run_kernel(id, Workspace::standard(1997))
  // and print with "%.17g".
  const double expected[kKernelCount] = {
      /* k1  */ 69943.245959204083,
      /* k2  */ 539.67819128449366,
      /* k3  */ 501.8139937234742,
      // k4 re-recorded after bounding its band walk at x's edge: the old
      // value (-69.201307715715728) summed an out-of-bounds read of 161
      // doubles past x, and changed under sanitizer allocators.
      /* k4  */ -58.675179530151368,
      /* k5  */ 165.50639881318457,
      /* k6  */ 206424.39223589608,
      /* k7  */ 81310999.505121887,
      /* k8  */ 306.50147218901418,
      /* k9  */ 3374.5603561465482,
      /* k10 */ -3509.567525059957,
      /* k11 */ 249255.34127026348,
      /* k12 */ 0.15306539195243896,
      /* k13 */ 128,
      /* k14 */ 1000.9999999999994,
      /* k15 */ 4.8546996153736828,
      /* k16 */ 579.32868118729266,
      /* k17 */ 312.96372061691301,
      /* k18 */ 502.01832474643743,
      /* k19 */ 592.6138230784361,
      /* k20 */ -177.43084241654083,
      /* k21 */ 2176.6687693754079,
      /* k22 */ 2072.9249445844639,
      /* k23 */ 461.04318865992605,
      /* k24 */ 137,
  };
  for (int id = 1; id <= kKernelCount; ++id) {
    auto ws = Workspace::standard(1997);
    if (id == 24) ws.x[137] = -100.0;  // give the argmin a definite answer
    const double checksum = run_kernel(id, ws);
    EXPECT_NEAR(checksum, expected[id - 1],
                1e-9 * (1.0 + std::fabs(expected[id - 1])))
        << "kernel " << id << " drifted: " << std::scientific << checksum;
  }
}

}  // namespace
}  // namespace ir::livermore
