#include "algebra/moebius.hpp"

#include <cstdio>

namespace ir::algebra {

std::string MoebiusMap::to_string() const {
  char buf[128];
  if (c == 0.0 && d == 1.0) {
    if (a == 0.0) {
      std::snprintf(buf, sizeof buf, "x -> %g", b);
    } else {
      std::snprintf(buf, sizeof buf, "x -> %g*x + %g", a, b);
    }
  } else {
    std::snprintf(buf, sizeof buf, "x -> (%g*x + %g)/(%g*x + %g)", a, b, c, d);
  }
  return buf;
}

}  // namespace ir::algebra
