# Empty compiler generated dependencies file for fibonacci_power.
# This may be replaced when dependencies are built.
