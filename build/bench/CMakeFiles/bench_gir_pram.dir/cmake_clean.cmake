file(REMOVE_RECURSE
  "CMakeFiles/bench_gir_pram.dir/bench_gir_pram.cpp.o"
  "CMakeFiles/bench_gir_pram.dir/bench_gir_pram.cpp.o.d"
  "bench_gir_pram"
  "bench_gir_pram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gir_pram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
