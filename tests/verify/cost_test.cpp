// The static cost & conflict analyzer pinned two ways: golden W/D/steps/
// bank-conflict numbers for each engine's schedule on small deterministic
// systems (so any drift in the model or the compiled tables is loud), and a
// ground-truth validation run on pram::Machine — the predictor's step count,
// round count, and scatter-bank occupancy must match what the simulated
// machine actually does, address trace included.
#include "verify/cost.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "algebra/monoids.hpp"
#include "core/ordinary_ir.hpp"
#include "core/ordinary_ir_pram.hpp"
#include "core/plan.hpp"
#include "support/contract.hpp"

namespace ir::verify {
namespace {

using algebra::AddMonoid;
using core::EngineChoice;
using core::OrdinaryIrSystem;
using core::Plan;
using core::PlanOptions;

/// One chain: A[i+1] := A[i] . A[i+1].
OrdinaryIrSystem chain_system(std::size_t n) {
  OrdinaryIrSystem sys;
  sys.cells = n + 1;
  for (std::size_t i = 0; i < n; ++i) {
    sys.f.push_back(i);
    sys.g.push_back(i + 1);
  }
  return sys;
}

/// A chain whose cells sit `stride` apart: with stride == banks every
/// initial-array access of the seed and scatter steps lands on bank 0, the
/// worst case the conflict model exists to predict.
OrdinaryIrSystem strided_system(std::size_t n, std::size_t stride) {
  OrdinaryIrSystem sys;
  sys.cells = stride * n + 1;
  for (std::size_t i = 0; i < n; ++i) {
    sys.f.push_back(stride * i);
    sys.g.push_back(stride * (i + 1));
  }
  return sys;
}

Plan plan_for(const OrdinaryIrSystem& sys, EngineChoice engine,
              std::size_t blocks = 0) {
  PlanOptions options;
  options.engine = engine;
  if (blocks > 0) options.blocks = blocks;
  return core::compile_plan(sys, options);
}

CostReport cost_at(const Plan& plan, std::size_t banks,
                   BankMode mode = BankMode::kCrew) {
  CostOptions options;
  options.banks = banks;
  options.mode = mode;
  return cost_plan(plan, options);
}

// ---------------------------------------------------------------- goldens

TEST(CostGoldenTest, JumpingChain8) {
  const Plan plan = plan_for(chain_system(8), EngineChoice::kJumping);
  // Work = 1 seed ⊙ (the single root) + 17 moves; depth = 3 rounds + seed;
  // steps = seed + 3 rounds + scatter, matching the machine one-for-one.
  const CostReport r1 = cost_at(plan, 1);
  EXPECT_EQ(r1.engine, "jumping");
  EXPECT_EQ(r1.work, 18u);
  EXPECT_EQ(r1.depth, 4u);
  EXPECT_EQ(r1.steps, 5u);
  EXPECT_EQ(r1.rounds, 3u);
  EXPECT_EQ(r1.peak_footprint, 9u);
  ASSERT_EQ(r1.phases.size(), 5u);
  EXPECT_EQ(r1.phases.front().name, "seed");
  EXPECT_EQ(r1.phases.back().name, "scatter");
  // B=1: every access serializes; the ideal does too, so never any stalls.
  EXPECT_EQ(r1.peak_bank_occupancy, 9u);
  EXPECT_EQ(r1.bank_cycles, 74u);
  EXPECT_EQ(r1.stalls, 0u);
  // Consecutive cells spread perfectly over 8 and 64 banks.
  const CostReport r8 = cost_at(plan, 8);
  EXPECT_EQ(r8.peak_bank_occupancy, 2u);
  EXPECT_EQ(r8.bank_cycles, 11u);
  EXPECT_EQ(r8.stalls, 0u);
  const CostReport r64 = cost_at(plan, 64);
  EXPECT_EQ(r64.peak_bank_occupancy, 1u);
  EXPECT_EQ(r64.bank_cycles, 10u);
  EXPECT_EQ(r64.stalls, 0u);
}

TEST(CostGoldenTest, BlockedChain8ThreeBlocks) {
  const Plan plan = plan_for(chain_system(8), EngineChoice::kBlocked, 3);
  const CostReport r1 = cost_at(plan, 1);
  EXPECT_EQ(r1.engine, "blocked");
  // Work = 6 sweep ⊙ + 5 fix-ups; depth = longest block sweep (3) + the one
  // fix-up layer; steps = seed + 3 sweep sub-steps + 2 resolve rounds +
  // scatter.
  EXPECT_EQ(r1.work, 11u);
  EXPECT_EQ(r1.depth, 4u);
  EXPECT_EQ(r1.steps, 7u);
  EXPECT_EQ(r1.rounds, 2u);
  EXPECT_EQ(r1.peak_footprint, 9u);
  ASSERT_EQ(r1.phases.size(), 4u);
  EXPECT_EQ(r1.phases[1].name, "block sweep");
  EXPECT_EQ(r1.phases[1].steps, 3u);
  EXPECT_EQ(r1.phases[2].name, "resolve");
  EXPECT_EQ(r1.phases[2].steps, 2u);
  EXPECT_EQ(r1.bank_cycles, 62u);
  EXPECT_EQ(r1.stalls, 0u);
  EXPECT_EQ(cost_at(plan, 8).bank_cycles, 15u);
  EXPECT_EQ(cost_at(plan, 8).stalls, 0u);
  EXPECT_EQ(cost_at(plan, 64).bank_cycles, 14u);
  EXPECT_EQ(cost_at(plan, 64).peak_bank_occupancy, 1u);
}

TEST(CostGoldenTest, ScanChain8) {
  const Plan plan = plan_for(chain_system(8), EngineChoice::kScan);
  const CostReport r1 = cost_at(plan, 1);
  EXPECT_EQ(r1.engine, "scan");
  // One segment of 8: W = 8 (root seed + 7 folds), D = 8 — a sequential
  // chain; steps = seed + 8 fold steps + scatter.
  EXPECT_EQ(r1.work, 8u);
  EXPECT_EQ(r1.depth, 8u);
  EXPECT_EQ(r1.steps, 10u);
  EXPECT_EQ(r1.rounds, 0u);
  ASSERT_EQ(r1.phases.size(), 3u);
  EXPECT_EQ(r1.phases[1].name, "scan");
  EXPECT_TRUE(r1.phases[1].sequential);
  // The sequential fold issues one access per cycle regardless of banks —
  // its 21 cycles (14 reads + 7 writes) never count as stalls.
  EXPECT_EQ(r1.phases[1].bank_cycles, 21u);
  EXPECT_EQ(r1.phases[1].stalls, 0u);
  EXPECT_EQ(r1.bank_cycles, 54u);
  EXPECT_EQ(cost_at(plan, 8).bank_cycles, 26u);
  EXPECT_EQ(cost_at(plan, 64).bank_cycles, 25u);
  EXPECT_EQ(cost_at(plan, 64).stalls, 0u);
}

TEST(CostGoldenTest, GirChain8) {
  const Plan plan = plan_for(chain_system(8), EngineChoice::kGeneralCap);
  const CostReport r1 = cost_at(plan, 1);
  EXPECT_EQ(r1.engine, "gir-cap");
  // Entry i folds its i+1 snapshot terms: W = Σ(i) + 8 root powers = 36; the
  // widest entry folds 9 terms pairwise in ceil(log2 9) = 4 levels.
  EXPECT_EQ(r1.work, 36u);
  EXPECT_EQ(r1.depth, 4u);
  EXPECT_EQ(r1.steps, 1u);
  ASSERT_EQ(r1.phases.size(), 1u);
  EXPECT_EQ(r1.phases[0].name, "fold");
  EXPECT_EQ(r1.phases[0].reads, 9u);   // 9 distinct cells after coalescing
  EXPECT_EQ(r1.phases[0].writes, 8u);
  EXPECT_EQ(r1.bank_cycles, 17u);
  EXPECT_EQ(cost_at(plan, 8).bank_cycles, 3u);
  EXPECT_EQ(cost_at(plan, 64).bank_cycles, 2u);
}

TEST(CostGoldenTest, StridedChainConcentratesOnOneBank) {
  // Cells 8 apart: at B=8 every seed read (8 self cells + the root, all
  // ≡ 0 mod 8) and every scatter write serializes on bank 0, while the
  // trace-array traffic stays spread — the predictor must localize the
  // stalls to exactly those two phases.
  const Plan plan = plan_for(strided_system(8, 8), EngineChoice::kJumping);
  const CostReport r1 = cost_at(plan, 1);
  EXPECT_EQ(r1.stalls, 0u);  // one bank is also the ideal
  EXPECT_EQ(r1.peak_bank_occupancy, 9u);

  const CostReport r8 = cost_at(plan, 8);
  EXPECT_EQ(r8.peak_bank_occupancy, 9u);
  EXPECT_EQ(r8.bank_cycles, 25u);
  EXPECT_EQ(r8.stalls, 14u);
  ASSERT_EQ(r8.phases.size(), 5u);
  EXPECT_EQ(r8.phases.front().stalls, 7u);  // seed: 9 reads on bank 0
  EXPECT_EQ(r8.phases.back().stalls, 7u);   // scatter: 8 writes on bank 0
  for (std::size_t round = 1; round + 1 < r8.phases.size(); ++round) {
    EXPECT_EQ(r8.phases[round].stalls, 0u) << "trace array is consecutive";
  }

  // 64 banks: only cells 0 and 64 still collide (one residual stall).
  const CostReport r64 = cost_at(plan, 64);
  EXPECT_EQ(r64.peak_bank_occupancy, 2u);
  EXPECT_EQ(r64.stalls, 1u);

  // More banks never hurt: occupancy and total memory time are monotone.
  EXPECT_GE(r1.bank_cycles, r8.bank_cycles);
  EXPECT_GE(r8.bank_cycles, r64.bank_cycles);
}

TEST(CostGoldenTest, CrcwEqualsCrewOnExclusiveWritePlans) {
  // Write coalescing is the only CRCW/CREW difference, and hazard-free
  // schedules never issue duplicate writes in one step — the two modes must
  // price every certified plan identically.
  for (const EngineChoice engine :
       {EngineChoice::kJumping, EngineChoice::kBlocked, EngineChoice::kScan,
        EngineChoice::kGeneralCap}) {
    const Plan plan = plan_for(chain_system(8), engine, 3);
    const CostReport crew = cost_at(plan, 8, BankMode::kCrew);
    const CostReport crcw = cost_at(plan, 8, BankMode::kCrcw);
    EXPECT_EQ(crew.bank_cycles, crcw.bank_cycles) << crew.engine;
    EXPECT_EQ(crew.stalls, crcw.stalls) << crew.engine;
    EXPECT_EQ(crew.work, crcw.work) << crew.engine;
  }
}

TEST(CostGoldenTest, ReportSurfacesAndContracts) {
  const Plan plan = plan_for(chain_system(8), EngineChoice::kJumping);
  const CostReport report = cost_at(plan, 8);
  const std::string line = report.summary();
  EXPECT_NE(line.find("jumping: W=18 D=4 steps=5 rounds=3"), std::string::npos)
      << line;
  EXPECT_NE(line.find("banks=8/crew"), std::string::npos) << line;
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"work\": 18"), std::string::npos);
  EXPECT_NE(json.find("\"phases\": ["), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"scatter\""), std::string::npos);
  EXPECT_THROW(cost_at(plan, 0), support::ContractViolation);
}

// ------------------------------------------- ground truth: pram::Machine

/// Max per-bank occupancy of a set of addresses inside `base[0..cells)`,
/// cell → bank by (index mod banks); addresses outside the array are the
/// machine's trace/pointer traffic and are skipped.  Deduped first: the
/// model coalesces concurrent accesses to one cell.
std::size_t bank_occupancy(const std::vector<const void*>& addresses,
                           const std::uint64_t* base, std::size_t cells,
                           std::size_t banks) {
  std::set<std::size_t> touched;
  for (const void* address : addresses) {
    const auto* cell = static_cast<const std::uint64_t*>(address);
    if (cell < base || cell >= base + cells) continue;
    touched.insert(static_cast<std::size_t>(cell - base));
  }
  std::vector<std::size_t> occupancy(banks, 0);
  std::size_t peak = 0;
  for (const std::size_t index : touched) {
    peak = std::max(peak, ++occupancy[index % banks]);
  }
  return peak;
}

/// Run the jumping plan's system on the simulator (early termination off, so
/// every compiled round is a machine step) and check the predictor against
/// the machine's actual behavior: step count, round count, and the bank
/// occupancy of the scatter step's writes into the result array.
void expect_predictions_match_machine(const OrdinaryIrSystem& sys,
                                      const char* context) {
  const Plan plan = plan_for(sys, EngineChoice::kJumping);

  pram::Machine machine(64, pram::AccessMode::kCrew);
  std::vector<pram::Machine::StepAccesses> trace;
  machine.set_step_observer(
      [&](const pram::Machine::StepAccesses& step) { trace.push_back(step); });
  std::vector<std::uint64_t> initial(sys.cells);
  for (std::size_t c = 0; c < sys.cells; ++c) initial[c] = 1 + c;
  const std::vector<std::uint64_t> result = core::ordinary_ir_pram_parallel(
      AddMonoid<std::uint64_t>{}, sys, std::move(initial), machine,
      /*early_termination=*/false);

  // The predictor's step structure is the machine's: seed + rounds + scatter.
  const CostReport report = cost_at(plan, 8);
  EXPECT_EQ(report.steps, machine.stats().steps) << context;
  EXPECT_EQ(report.rounds, machine.stats().steps - 2) << context;
  EXPECT_EQ(report.rounds, plan.jump.rounds()) << context;
  ASSERT_EQ(trace.size(), report.steps) << context;

  // Ground-truth conflicts: the scatter step's writes land in the result
  // array (whose buffer `result` still owns — vector moves keep it), and
  // their measured per-bank peak must equal the predicted scatter-phase
  // occupancy at every bank width.
  for (const std::size_t banks : {1u, 8u, 64u}) {
    const CostReport predicted = cost_at(plan, banks);
    ASSERT_FALSE(predicted.phases.empty());
    const PhaseCost& scatter = predicted.phases.back();
    const std::size_t measured =
        bank_occupancy(trace.back().writes, result.data(), sys.cells, banks);
    EXPECT_EQ(measured, scatter.peak_bank_occupancy)
        << context << " B=" << banks
        << " (scatter writes vs predicted occupancy)";
  }
}

TEST(CostPramValidationTest, ChainMatchesMachine) {
  expect_predictions_match_machine(chain_system(12), "chain12");
}

TEST(CostPramValidationTest, TreePredecessorsMatchMachine) {
  // f[i] = i/2 gives a shallow, bushy predecessor forest — a different round
  // structure than the chain's.
  OrdinaryIrSystem sys;
  sys.cells = 14;
  for (std::size_t i = 0; i < 13; ++i) {
    sys.f.push_back(i / 2);
    sys.g.push_back(i + 1);
  }
  expect_predictions_match_machine(sys, "tree13");
}

TEST(CostPramValidationTest, ScatteredCellsMatchMachine) {
  // Stride-8 cells: the system whose scatter the bank model flags; the
  // machine's real address trace must reproduce the predicted pile-up.
  expect_predictions_match_machine(strided_system(8, 8), "strided8x8");
}

TEST(CostPramValidationTest, PredictedConflictOrderingIsRealOrdering) {
  // The model's value is comparative: it must rank the scattered layout as
  // strictly worse than the dense chain at B=8, and the machine agrees.
  const Plan dense = plan_for(chain_system(8), EngineChoice::kJumping);
  const Plan sparse = plan_for(strided_system(8, 8), EngineChoice::kJumping);
  const CostReport dense_cost = cost_at(dense, 8);
  const CostReport sparse_cost = cost_at(sparse, 8);
  EXPECT_LT(dense_cost.stalls, sparse_cost.stalls);
  EXPECT_LT(dense_cost.peak_bank_occupancy, sparse_cost.peak_bank_occupancy);
}

}  // namespace
}  // namespace ir::verify
