#!/usr/bin/env python3
"""Diff BENCH_*.json reports against a committed baseline and flag regressions.

Usage:
  bench_compare.py [--threshold=0.15] [--warn-only] BASELINE CURRENT
  bench_compare.py --selftest

BASELINE and CURRENT are either two report files or two directories; in
directory mode every BENCH_*.json in CURRENT is matched to the same-named
file in BASELINE (unmatched files are reported but not fatal).  For every
variant present in both reports the relative change in per_op is printed;
a slowdown beyond the threshold (default +15%) is a REGRESSION and makes
the script exit 1 — unless --warn-only, which downgrades regressions to
warnings (for noisy CI machines where the baseline came from different
hardware).  Speedups and unit mismatches never fail; a unit mismatch is
reported and the variant skipped.

--selftest exercises the comparator on fabricated reports: a 2x slowdown
must be flagged and a 5% wobble must not.

Exit codes: 0 clean (or --warn-only), 1 regression found, 2 usage error.
"""

import json
import sys
from pathlib import Path

DEFAULT_THRESHOLD = 0.15


def load_variants(path):
    report = json.loads(Path(path).read_text())
    return report.get("bench", "?"), {
        v["name"]: v for v in report.get("variants", [])
    }


def compare_reports(baseline_path, current_path, threshold):
    """Return (lines, regressions) comparing per_op of shared variants."""
    bench, baseline = load_variants(baseline_path)
    _, current = load_variants(current_path)
    lines = []
    regressions = []
    for name, cur in sorted(current.items()):
        base = baseline.get(name)
        if base is None:
            lines.append(f"  {bench}/{name}: new variant (no baseline)")
            continue
        if base.get("unit") != cur.get("unit"):
            lines.append(f"  {bench}/{name}: unit changed "
                         f"{base.get('unit')!r} -> {cur.get('unit')!r}, skipped")
            continue
        if not base.get("per_op"):
            lines.append(f"  {bench}/{name}: baseline per_op is 0, skipped")
            continue
        change = cur["per_op"] / base["per_op"] - 1.0
        marker = ""
        if change > threshold:
            marker = "  REGRESSION"
            regressions.append(f"{bench}/{name}: {change:+.1%} "
                               f"({base['per_op']:.6g} -> {cur['per_op']:.6g} "
                               f"{cur['unit']})")
        lines.append(f"  {bench}/{name}: {change:+.1%}{marker}")
    for name in sorted(set(baseline) - set(current)):
        lines.append(f"  {bench}/{name}: variant disappeared from current run")
    return lines, regressions


def gather_pairs(baseline_arg, current_arg):
    baseline, current = Path(baseline_arg), Path(current_arg)
    if baseline.is_dir() != current.is_dir():
        print("bench_compare: BASELINE and CURRENT must both be files or both "
              "be directories", file=sys.stderr)
        sys.exit(2)
    if not baseline.is_dir():
        return [(baseline, current)]
    pairs = []
    for current_file in sorted(current.glob("BENCH_*.json")):
        baseline_file = baseline / current_file.name
        if baseline_file.exists():
            pairs.append((baseline_file, current_file))
        else:
            print(f"bench_compare: no baseline for {current_file.name}, skipped")
    if not pairs:
        print("bench_compare: no BENCH_*.json pairs to compare", file=sys.stderr)
        sys.exit(2)
    return pairs


def selftest():
    import tempfile

    def report(per_op_by_name):
        variants = [{"name": name, "unit": "ns", "samples": 3, "per_op": v,
                     "p50": v, "p90": v, "p99": v, "min": v, "max": v}
                    for name, v in per_op_by_name.items()]
        return json.dumps({"schema": "ir-bench-report", "version": 1,
                           "bench": "selftest", "machine": {}, "config": {},
                           "variants": variants})

    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        (tmp / "base.json").write_text(report({"fast": 100.0, "steady": 100.0}))
        (tmp / "bad.json").write_text(report({"fast": 200.0, "steady": 100.0}))
        (tmp / "wobble.json").write_text(report({"fast": 105.0, "steady": 95.0}))

        _, regressions = compare_reports(tmp / "base.json", tmp / "bad.json",
                                         DEFAULT_THRESHOLD)
        if len(regressions) != 1 or "fast" not in regressions[0]:
            print(f"bench_compare: selftest FAIL: 2x slowdown not flagged "
                  f"exactly once: {regressions}", file=sys.stderr)
            sys.exit(1)
        _, regressions = compare_reports(tmp / "base.json", tmp / "wobble.json",
                                         DEFAULT_THRESHOLD)
        if regressions:
            print(f"bench_compare: selftest FAIL: 5% wobble flagged: "
                  f"{regressions}", file=sys.stderr)
            sys.exit(1)
    print("bench_compare: selftest OK (2x flagged, 5% wobble not)")


def main():
    threshold = DEFAULT_THRESHOLD
    warn_only = False
    positional = []
    for arg in sys.argv[1:]:
        if arg == "--selftest":
            selftest()
            return
        if arg.startswith("--threshold="):
            threshold = float(arg[len("--threshold="):])
        elif arg == "--warn-only":
            warn_only = True
        else:
            positional.append(arg)
    if len(positional) != 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)

    all_regressions = []
    for baseline_file, current_file in gather_pairs(*positional):
        print(f"bench_compare: {current_file.name} vs {baseline_file}")
        lines, regressions = compare_reports(baseline_file, current_file,
                                             threshold)
        print("\n".join(lines))
        all_regressions.extend(regressions)

    if all_regressions:
        verb = "WARNING" if warn_only else "FAIL"
        print(f"bench_compare: {verb}: {len(all_regressions)} regression(s) "
              f"beyond +{threshold:.0%}:", file=sys.stderr)
        for regression in all_regressions:
            print(f"  {regression}", file=sys.stderr)
        if not warn_only:
            sys.exit(1)
    else:
        print(f"bench_compare: OK (no per_op regression beyond "
              f"+{threshold:.0%})")


if __name__ == "__main__":
    main()
