# Empty compiler generated dependencies file for ir_core.
# This may be replaced when dependencies are built.
