#include "testing/generators.hpp"

#include <algorithm>
#include <vector>

#include "support/contract.hpp"

namespace ir::testing {

namespace {

using core::GeneralIrSystem;
using support::SplitMix64;

/// Pick n in [1, cap] (boundary shapes pick their own tiny sizes).
std::size_t pick_iterations(SplitMix64& rng, const GeneratorLimits& limits) {
  const std::size_t cap = std::max<std::size_t>(limits.max_iterations, 1);
  return 1 + rng.below(cap);
}

GeneralIrSystem make_system(std::size_t cells, std::vector<std::size_t> f,
                            std::vector<std::size_t> g, std::vector<std::size_t> h) {
  GeneralIrSystem sys;
  sys.cells = cells;
  sys.f = std::move(f);
  sys.g = std::move(g);
  sys.h = std::move(h);
  return sys;
}

GeneralIrSystem gen_boundary(SplitMix64& rng) {
  const std::size_t n = rng.below(3);  // 0, 1, or 2 equations
  if (n == 0) {
    // Cells without equations (and the fully empty system) still serialize,
    // fingerprint, and solve.
    return make_system(rng.below(3), {}, {}, {});
  }
  const std::size_t cells = n + rng.below(3);
  std::vector<std::size_t> f(n), g(n), h(n);
  for (std::size_t i = 0; i < n; ++i) {
    f[i] = rng.below(cells);
    g[i] = rng.below(cells);
    h[i] = rng.chance(0.5) ? g[i] : rng.below(cells);
  }
  return make_system(cells, std::move(f), std::move(g), std::move(h));
}

GeneralIrSystem gen_chain(SplitMix64& rng, const GeneratorLimits& limits) {
  const std::size_t n = pick_iterations(rng, limits);
  const std::size_t cells = std::min(n + 1 + rng.below(4), limits.max_cells + n + 1);
  std::vector<std::size_t> f(n), g(n);
  for (std::size_t i = 0; i < n; ++i) {
    g[i] = i + 1;
    // Mostly the local predecessor; occasional breaks start fresh chains
    // (those become the blocked solver's per-block roots).
    f[i] = (i > 0 && rng.chance(0.8)) ? i : rng.below(cells);
  }
  return make_system(cells, std::move(f), g, g);
}

GeneralIrSystem gen_linear_chain(SplitMix64& rng, const GeneratorLimits& limits) {
  const std::size_t n = pick_iterations(rng, limits);
  std::vector<std::size_t> f(n), g(n);
  for (std::size_t i = 0; i < n; ++i) {
    f[i] = i;
    g[i] = i + 1;
  }
  return make_system(n + 1, std::move(f), g, g);
}

GeneralIrSystem gen_star(SplitMix64& rng, const GeneratorLimits& limits) {
  const std::size_t n = pick_iterations(rng, limits);
  const std::size_t cells = n + 1 + rng.below(3);
  const std::size_t hub = rng.below(cells);
  if (rng.chance(0.5)) {
    // Fan-out: every equation reads the hub, writes its own cell (ordinary).
    std::vector<std::size_t> g = support::random_injection(n, cells, rng);
    std::vector<std::size_t> f(n, hub);
    return make_system(cells, std::move(f), g, g);
  }
  // Fan-in: every equation writes the hub — repeated writes, GIR route.
  std::vector<std::size_t> f(n), h(n);
  std::vector<std::size_t> g(n, hub);
  for (std::size_t i = 0; i < n; ++i) {
    f[i] = rng.below(cells);
    h[i] = rng.chance(0.5) ? hub : rng.below(cells);
  }
  return make_system(cells, std::move(f), std::move(g), std::move(h));
}

GeneralIrSystem gen_permutation(SplitMix64& rng, const GeneratorLimits& limits) {
  const std::size_t n = pick_iterations(rng, limits);
  std::vector<std::size_t> g = support::random_permutation(n, rng);
  std::vector<std::size_t> f(n);
  for (std::size_t i = 0; i < n; ++i) {
    f[i] = (i > 0 && rng.chance(0.7)) ? g[rng.below(i)] : rng.below(n);
  }
  return make_system(n, std::move(f), g, g);
}

GeneralIrSystem gen_ordinary_scattered(SplitMix64& rng, const GeneratorLimits& limits) {
  const std::size_t n = pick_iterations(rng, limits);
  const std::size_t cells = n + rng.below(std::max<std::size_t>(limits.max_cells - n, 1) + 1);
  std::vector<std::size_t> g = support::random_injection(n, cells, rng);
  std::vector<std::size_t> f(n);
  const double rewire = rng.uniform(0.3, 0.95);
  for (std::size_t i = 0; i < n; ++i) {
    f[i] = (i > 0 && rng.chance(rewire)) ? g[rng.below(i)] : rng.below(cells);
  }
  return make_system(cells, std::move(f), g, g);
}

GeneralIrSystem gen_dependence_free(SplitMix64& rng, const GeneratorLimits& limits) {
  const std::size_t n = pick_iterations(rng, limits);
  // Written cells [0, n), read cells [n, 2n): no read ever sees a write, so
  // the router must take the elementwise path.
  const std::size_t cells = 2 * n;
  std::vector<std::size_t> f(n), g(n), h(n);
  for (std::size_t i = 0; i < n; ++i) {
    g[i] = i;
    f[i] = n + rng.below(n);
    h[i] = n + rng.below(n);
  }
  return make_system(cells, std::move(f), std::move(g), std::move(h));
}

GeneralIrSystem gen_general_random(SplitMix64& rng, const GeneratorLimits& limits) {
  const std::size_t n = pick_iterations(rng, limits);
  const std::size_t cells =
      1 + rng.below(std::max<std::size_t>(std::min(limits.max_cells, 2 * n), 1));
  std::vector<std::size_t> f(n), g(n), h(n);
  const double rewire = rng.uniform(0.2, 0.9);
  for (std::size_t i = 0; i < n; ++i) {
    g[i] = rng.below(cells);
    auto pick = [&]() {
      if (i > 0 && rng.chance(rewire)) return g[rng.below(i)];
      return rng.below(cells);
    };
    f[i] = pick();
    h[i] = pick();
  }
  return make_system(cells, std::move(f), std::move(g), std::move(h));
}

std::vector<std::string_view> split_lines(const std::string& text) {
  std::vector<std::string_view> lines;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    const std::size_t end = text.find('\n', begin);
    if (end == std::string::npos) {
      if (begin < text.size()) lines.push_back(std::string_view(text).substr(begin));
      break;
    }
    lines.push_back(std::string_view(text).substr(begin, end - begin));
    begin = end + 1;
  }
  return lines;
}

std::string join_lines(const std::vector<std::string_view>& lines) {
  std::string out;
  for (const auto line : lines) {
    out.append(line);
    out += '\n';
  }
  return out;
}

}  // namespace

std::string_view to_string(ShapeClass shape) {
  switch (shape) {
    case ShapeClass::kBoundary: return "boundary";
    case ShapeClass::kChain: return "chain";
    case ShapeClass::kLinearChain: return "linear-chain";
    case ShapeClass::kStar: return "star";
    case ShapeClass::kPermutation: return "permutation";
    case ShapeClass::kOrdinaryScattered: return "ordinary-scattered";
    case ShapeClass::kDependenceFree: return "dependence-free";
    case ShapeClass::kGeneralRandom: return "general-random";
  }
  return "unknown";
}

GeneratedCase generate_case(ShapeClass shape, support::SplitMix64& rng,
                            const GeneratorLimits& limits) {
  GeneratedCase out;
  out.shape = shape;
  switch (shape) {
    case ShapeClass::kBoundary: out.sys = gen_boundary(rng); break;
    case ShapeClass::kChain: out.sys = gen_chain(rng, limits); break;
    case ShapeClass::kLinearChain: out.sys = gen_linear_chain(rng, limits); break;
    case ShapeClass::kStar: out.sys = gen_star(rng, limits); break;
    case ShapeClass::kPermutation: out.sys = gen_permutation(rng, limits); break;
    case ShapeClass::kOrdinaryScattered:
      out.sys = gen_ordinary_scattered(rng, limits);
      break;
    case ShapeClass::kDependenceFree: out.sys = gen_dependence_free(rng, limits); break;
    case ShapeClass::kGeneralRandom: out.sys = gen_general_random(rng, limits); break;
  }
  out.sys.validate();
  return out;
}

GeneratedCase generate_case(support::SplitMix64& rng, const GeneratorLimits& limits) {
  const auto shape = kAllShapeClasses[rng.below(kAllShapeClasses.size())];
  return generate_case(shape, rng, limits);
}

bool is_ordinary_shape(const core::GeneralIrSystem& sys) {
  if (sys.h != sys.g) return false;
  std::vector<char> written(sys.cells, 0);
  for (const std::size_t cell : sys.g) {
    if (cell >= sys.cells || written[cell] != 0) return false;
    written[cell] = 1;
  }
  return true;
}

core::OrdinaryIrSystem to_ordinary(const core::GeneralIrSystem& sys) {
  IR_REQUIRE(is_ordinary_shape(sys), "system is not ordinary-shaped (h = g, g injective)");
  core::OrdinaryIrSystem ord;
  ord.cells = sys.cells;
  ord.f = sys.f;
  ord.g = sys.g;
  return ord;
}

std::string mutate_document(const std::string& text, support::SplitMix64& rng) {
  if (text.empty()) return "garbage\n";
  switch (rng.below(6)) {
    case 0:  // truncate mid-document
      return text.substr(0, rng.below(text.size()));
    case 1: {  // corrupt one byte
      std::string out = text;
      out[rng.below(out.size())] = static_cast<char>(rng.below(256));
      return out;
    }
    case 2: {  // duplicate a line (duplicate headers / duplicate counts)
      auto lines = split_lines(text);
      if (lines.empty()) return text + text;
      const std::size_t pick = rng.below(lines.size());
      lines.insert(lines.begin() + static_cast<std::ptrdiff_t>(pick), lines[pick]);
      return join_lines(lines);
    }
    case 3: {  // delete a line
      auto lines = split_lines(text);
      if (lines.empty()) return "";
      lines.erase(lines.begin() + static_cast<std::ptrdiff_t>(rng.below(lines.size())));
      return join_lines(lines);
    }
    case 4: {  // overflow-sized count: reserve()-bombs must become parse errors
      auto lines = split_lines(text);
      std::string out;
      bool rewrote = false;
      for (const auto line : lines) {
        std::string s(line);
        for (const char* key : {"equations ", "cells ", "count "}) {
          if (!rewrote && s.rfind(key, 0) == 0) {
            s = std::string(key) + (rng.chance(0.5) ? "18446744073709551615"
                                                    : "99999999999999999");
            rewrote = true;
          }
        }
        out += s;
        out += '\n';
      }
      if (!rewrote) return text.substr(0, text.size() / 2);
      return out;
    }
    default: {  // insert a garbage line
      auto lines = split_lines(text);
      const std::size_t pick = lines.empty() ? 0 : rng.below(lines.size() + 1);
      lines.insert(lines.begin() + static_cast<std::ptrdiff_t>(pick),
                   "0 -3 18446744073709551616 x");
      return join_lines(lines);
    }
  }
}

}  // namespace ir::testing
