// Inspector/executor support: build IR systems from runtime-recorded
// subscripts.
//
// The IR frame requires index maps that do not depend on the data array —
// but loops like the Livermore PIC kernels compute their scatter targets at
// runtime.  The classic remedy is inspector/executor: run a cheap inspector
// pass that RECORDS the subscripts each iteration would use (legal whenever
// the subscript computation itself is independent of the recurrence array),
// then hand the recorded system to the IR solvers.  SystemRecorder is that
// recording surface; livermore/parallel.cpp uses it for kernels 13 and 14.
#pragma once

#include <vector>

#include "core/ir_problem.hpp"

namespace ir::core {

/// Accumulates equations A[g] = op(A[f], A[h]) in loop order.
class SystemRecorder {
 public:
  /// @param cells  size of the flat cell space equations index into
  explicit SystemRecorder(std::size_t cells) : cells_(cells) {}

  /// Record A[g] = op(A[f], A[h]).  Indices are range-checked immediately so
  /// a buggy inspector fails at the recording site, not inside a solver.
  void record(std::size_t f, std::size_t g, std::size_t h) {
    IR_REQUIRE(f < cells_ && g < cells_ && h < cells_, "recorded index out of range");
    sys_.f.push_back(f);
    sys_.g.push_back(g);
    sys_.h.push_back(h);
  }

  /// Record a self-update A[g] = op(A[f], A[g]).
  void record_self(std::size_t f, std::size_t g) { record(f, g, g); }

  /// Equations recorded so far.
  [[nodiscard]] std::size_t equations() const noexcept { return sys_.g.size(); }

  [[nodiscard]] std::size_t cells() const noexcept { return cells_; }

  /// Finalize into a validated system (the recorder is spent afterwards).
  [[nodiscard]] GeneralIrSystem finish() && {
    sys_.cells = cells_;
    sys_.validate();
    return std::move(sys_);
  }

 private:
  std::size_t cells_;
  GeneralIrSystem sys_;
};

}  // namespace ir::core
