// Incremental HTTP/1.1 request parser (docs/http.md).
//
// Written from scratch for the serving tier: a connection feeds raw bytes in
// whatever fragments the socket produced and the parser advances a state
// machine — request line, headers, then a fixed Content-Length body or
// chunked transfer coding (extensions ignored, trailers skipped) — without
// ever re-scanning consumed input.  One parse never allocates more than the
// request it is building: header and body limits (HttpLimits) are enforced
// *as bytes arrive*, so an adversarial client cannot make the server buffer
// an unbounded request line, header block, or chunked body.
//
// The parser is deliberately a pull-free design: feed() consumes as much of
// the input as the current request can use and stops at the request boundary,
// returning the byte count consumed.  Pipelined keep-alive clients therefore
// work by construction — the bytes of request N+1 stay in the connection's
// buffer until reset() arms the parser for the next round.
//
// Errors are terminal and carry the HTTP status the server should answer
// with before closing (400 malformed, 413 too large, 431 header fields too
// large, 501 unknown transfer coding, 505 bad version).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ir::net {

/// Per-request parse limits, enforced incrementally (see header comment).
struct HttpLimits {
  std::size_t max_request_line = 8 * 1024;   ///< method + target + version
  std::size_t max_header_bytes = 64 * 1024;  ///< total header block, bytes
  std::size_t max_headers = 128;             ///< header field count
  std::size_t max_body_bytes = 16 * 1024 * 1024;  ///< decoded body bytes
};

/// One fully parsed request.  Header names are lower-cased at parse time;
/// values keep their bytes with surrounding whitespace trimmed.
struct HttpRequest {
  std::string method;   ///< as sent ("GET", "POST", ...)
  std::string target;   ///< raw request target ("/v1/solve?engine=gir")
  std::string path;     ///< target up to '?'
  std::string query;    ///< target after '?', "" when absent
  int version_minor = 1;  ///< HTTP/1.<minor>; only 0 and 1 are accepted
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  bool keep_alive = true;  ///< resolved from version + Connection header
  bool chunked = false;    ///< body arrived chunk-encoded

  /// First header with this (lower-case) name, or nullptr.
  [[nodiscard]] const std::string* header(std::string_view name) const;

  /// Value of `key` in the query string (percent-decoded), or "" when
  /// absent.  `found` (when non-null) distinguishes "" from missing.
  [[nodiscard]] std::string query_param(std::string_view key,
                                        bool* found = nullptr) const;
};

/// Percent-decode a URL component ('+' becomes space, %XX decodes; a
/// malformed escape is kept verbatim rather than rejected).
[[nodiscard]] std::string url_decode(std::string_view text);

class HttpParser {
 public:
  explicit HttpParser(HttpLimits limits = {}) : limits_(limits) {}

  /// Consume as many of `data`'s bytes as the current request can use.
  /// Returns the number consumed: everything, unless the request completed
  /// or failed mid-buffer (the remainder belongs to the next request or to
  /// nobody).  Feeding a complete or failed parser consumes nothing.
  std::size_t feed(std::string_view data);

  [[nodiscard]] bool complete() const noexcept { return state_ == State::kComplete; }
  [[nodiscard]] bool failed() const noexcept { return state_ == State::kError; }
  /// True while nothing of the current request has arrived — the idle
  /// keep-alive state, as opposed to a half-received request.
  [[nodiscard]] bool idle() const noexcept {
    return state_ == State::kRequestLine && line_.empty();
  }

  /// HTTP status for the terminal error (only meaningful when failed()).
  [[nodiscard]] int error_status() const noexcept { return error_status_; }
  [[nodiscard]] const std::string& error_reason() const noexcept { return error_reason_; }

  /// The parsed request (only meaningful when complete()).
  [[nodiscard]] HttpRequest& request() noexcept { return request_; }
  [[nodiscard]] HttpRequest take_request() { return std::move(request_); }

  /// Re-arm for the next request on the same connection (keeps limits).
  void reset();

 private:
  enum class State {
    kRequestLine,
    kHeaders,
    kFixedBody,
    kChunkSize,
    kChunkData,
    kChunkDataEnd,  ///< CRLF that terminates a chunk's data
    kTrailers,
    kComplete,
    kError,
  };

  /// Accumulate one CRLF- (or bare-LF-) terminated line into line_.
  /// Returns true when the line is complete; `cap` bounds the accumulated
  /// length and trips `status` on overflow.
  bool take_line(std::string_view& data, std::size_t& used, std::size_t cap,
                 int status, const char* what);

  void parse_request_line();
  void parse_header_line();
  void finish_headers();
  void parse_chunk_size_line();
  void fail(int status, std::string reason);

  HttpLimits limits_;
  State state_ = State::kRequestLine;
  std::string line_;          ///< current partial line
  std::size_t header_bytes_ = 0;
  std::size_t body_expected_ = 0;  ///< remaining bytes of fixed body / chunk
  HttpRequest request_;
  int error_status_ = 0;
  std::string error_reason_;
};

}  // namespace ir::net
