// Randomized IR-system generators for the differential fuzzing harness.
//
// Each ShapeClass targets a distinct solver route or schedule edge:
//   * kBoundary          — n ∈ {0, 1, 2}, the off-by-one sizes every engine
//                          must survive (empty schedules, single rounds);
//   * kChain             — local chains with random breaks, the blocked
//                          solver's best case and phase-2 fix-up exercise;
//   * kLinearChain       — one unbroken A[i+1] := A[i] ⊙ A[i+1] chain, the
//                          Möbius/linear-recurrence shape (max round count);
//   * kStar              — hub topologies: fan-out (every equation reads one
//                          hub, ordinary) or fan-in (every equation writes
//                          one hub — repeated writes, the GIR route);
//   * kPermutation       — g a random permutation of all cells (n == m),
//                          scattered deep chains for pointer jumping;
//   * kOrdinaryScattered — random injective g with tunable read rewiring,
//                          the generic ordinary workload;
//   * kDependenceFree    — reads only untouched cells, the elementwise route;
//   * kGeneralRandom     — unconstrained f, g, h with repeated writes, the
//                          CAP route.
//
// Systems are valid by construction (the harness re-checks with validate()),
// and generation is deterministic in the SplitMix64 state so any case is
// reproducible from a printed seed.
#pragma once

#include <array>
#include <string>
#include <string_view>

#include "core/ir_problem.hpp"
#include "support/rng.hpp"

namespace ir::testing {

enum class ShapeClass {
  kBoundary = 0,
  kChain,
  kLinearChain,
  kStar,
  kPermutation,
  kOrdinaryScattered,
  kDependenceFree,
  kGeneralRandom,
};

inline constexpr std::array<ShapeClass, 8> kAllShapeClasses = {
    ShapeClass::kBoundary,          ShapeClass::kChain,
    ShapeClass::kLinearChain,       ShapeClass::kStar,
    ShapeClass::kPermutation,       ShapeClass::kOrdinaryScattered,
    ShapeClass::kDependenceFree,    ShapeClass::kGeneralRandom,
};

[[nodiscard]] std::string_view to_string(ShapeClass shape);

struct GeneratorLimits {
  std::size_t max_iterations = 64;  ///< upper bound on n (≥ 1)
  std::size_t max_cells = 160;      ///< upper bound on m
};

struct GeneratedCase {
  ShapeClass shape = ShapeClass::kGeneralRandom;
  core::GeneralIrSystem sys;
};

/// Generate one system of the given shape class.
[[nodiscard]] GeneratedCase generate_case(ShapeClass shape, support::SplitMix64& rng,
                                          const GeneratorLimits& limits = {});

/// Generate one system of a uniformly random shape class.
[[nodiscard]] GeneratedCase generate_case(support::SplitMix64& rng,
                                          const GeneratorLimits& limits = {});

/// True iff h == g and g is injective — the shape the ordinary engines accept.
[[nodiscard]] bool is_ordinary_shape(const core::GeneralIrSystem& sys);

/// The ordinary view of an ordinary-shaped system (throws on other shapes).
[[nodiscard]] core::OrdinaryIrSystem to_ordinary(const core::GeneralIrSystem& sys);

/// Apply one random structure-agnostic mutation to a serialized document:
/// truncation, byte corruption, line duplication (duplicate headers), line
/// deletion, garbage insertion, or an overflow-sized count.  Parsers must
/// either accept the result or throw ContractViolation with a line number —
/// any other escape (crash, bad_alloc, std::exception) is a bug.
[[nodiscard]] std::string mutate_document(const std::string& text,
                                          support::SplitMix64& rng);

}  // namespace ir::testing
